"""Unit tests for the large-sample tests, validated against scipy."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.stats_tests import (
    MIN_SAMPLES,
    mean_difference_significant,
    mean_significantly_positive,
)
from repro.sim.monitor import Tally
from repro.sim.statmath import normal_ppf, t_ppf


def tally_of(values):
    tally = Tally()
    for value in values:
        tally.record(float(value))
    return tally


# ----------------------------------------------------------------------
# quantile helpers vs scipy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("p", [0.005, 0.025, 0.05, 0.5, 0.9, 0.95, 0.975, 0.995])
def test_normal_ppf_matches_scipy(p):
    assert normal_ppf(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-6)


@pytest.mark.parametrize("p", [0.9, 0.95, 0.975])
@pytest.mark.parametrize("dof", [3, 5, 10, 30, 100])
def test_t_ppf_close_to_scipy(p, dof):
    assert t_ppf(p, dof) == pytest.approx(scipy_stats.t.ppf(p, dof), rel=5e-3)


def test_normal_ppf_domain():
    with pytest.raises(ValueError):
        normal_ppf(0.0)
    with pytest.raises(ValueError):
        normal_ppf(1.0)


def test_t_ppf_rejects_bad_dof():
    with pytest.raises(ValueError):
        t_ppf(0.9, 0)


# ----------------------------------------------------------------------
# one-sided positive-mean test
# ----------------------------------------------------------------------
def test_clearly_positive_mean_detected():
    rng = np.random.default_rng(1)
    sample = rng.normal(5.0, 1.0, size=100)
    assert mean_significantly_positive(tally_of(sample), 0.95)


def test_zero_mean_not_flagged():
    rng = np.random.default_rng(2)
    sample = rng.normal(0.0, 1.0, size=200)
    assert not mean_significantly_positive(tally_of(sample), 0.95)


def test_all_zero_waiting_times_not_flagged():
    # The MinMax-switch condition 3 with no memory contention at all.
    assert not mean_significantly_positive(tally_of([0.0] * 50), 0.95)


def test_small_samples_conservative():
    sample = [10.0] * (MIN_SAMPLES - 1)
    assert not mean_significantly_positive(tally_of(sample), 0.95)


def test_constant_positive_sample_flagged():
    sample = [3.0] * (MIN_SAMPLES + 5)
    assert mean_significantly_positive(tally_of(sample), 0.95)


def test_agrees_with_scipy_one_sample_t():
    rng = np.random.default_rng(3)
    for mean in (0.05, 0.2, 0.5):
        sample = rng.normal(mean, 1.0, size=60)
        ours = mean_significantly_positive(tally_of(sample), 0.95)
        t_stat, p_value = scipy_stats.ttest_1samp(sample, 0.0, alternative="greater")
        theirs = p_value < 0.05
        assert ours == theirs, f"disagreement at mean={mean}"


def test_confidence_validation():
    with pytest.raises(ValueError):
        mean_significantly_positive(tally_of([1.0] * 30), 0.3)


# ----------------------------------------------------------------------
# two-sample difference test
# ----------------------------------------------------------------------
def test_identical_distributions_not_flagged():
    rng = np.random.default_rng(4)
    a = tally_of(rng.normal(10, 2, size=100))
    b = tally_of(rng.normal(10, 2, size=100))
    assert not mean_difference_significant(a, b, 0.99)


def test_shifted_distributions_flagged():
    rng = np.random.default_rng(5)
    a = tally_of(rng.normal(10, 1, size=100))
    b = tally_of(rng.normal(14, 1, size=100))
    assert mean_difference_significant(a, b, 0.99)


def test_two_sample_small_samples_conservative():
    a = tally_of([1.0] * 5)
    b = tally_of([100.0] * 5)
    assert not mean_difference_significant(a, b, 0.99)


def test_two_sample_agrees_with_scipy_z():
    rng = np.random.default_rng(6)
    for shift in (0.1, 0.4, 1.0):
        a_values = rng.normal(5.0, 1.5, size=80)
        b_values = rng.normal(5.0 + shift, 1.5, size=80)
        ours = mean_difference_significant(tally_of(a_values), tally_of(b_values), 0.99)
        z = (a_values.mean() - b_values.mean()) / np.sqrt(
            a_values.var(ddof=1) / 80 + b_values.var(ddof=1) / 80
        )
        theirs = abs(z) > scipy_stats.norm.ppf(0.995)
        assert ours == theirs, f"disagreement at shift={shift}"


def test_workload_change_direction_symmetric():
    small = tally_of([100.0] * 40)
    large = tally_of([1000.0] * 40)
    assert mean_difference_significant(small, large, 0.99)
    assert mean_difference_significant(large, small, 0.99)
