"""Unit tests for the discrete-event kernel (events, processes, clock)."""

import pytest

from repro.sim import Event, Interrupt, Simulator


def test_timeout_fires_at_the_right_time():
    sim = Simulator()
    log = []

    def worker():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [5.0, 7.5]


def test_timeout_not_triggered_before_fire_time():
    sim = Simulator()
    timeout = sim.timeout(3.0)
    assert not timeout.triggered
    sim.run(until=2.0)
    assert not timeout.triggered
    sim.run(until=3.0)
    assert timeout.triggered


def test_zero_delay_timeout_fires_immediately():
    sim = Simulator()
    fired = []
    timeout = sim.timeout(0.0, value="now")
    timeout.callbacks.append(lambda evt: fired.append(evt.value))
    sim.run()
    assert fired == ["now"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_value_delivered_to_process():
    sim = Simulator()
    event = sim.event()
    received = []

    def waiter():
        value = yield event
        received.append(value)

    sim.process(waiter())

    def trigger():
        yield sim.timeout(1.0)
        event.succeed(42)

    sim.process(trigger())
    sim.run()
    assert received == [42]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_cancelled_event_never_fires():
    sim = Simulator()
    event = sim.event()
    fired = []
    event.callbacks.append(lambda evt: fired.append(1))
    event.cancel()
    event.succeed(None)  # silently ignored
    sim.run()
    assert fired == []
    assert event.cancelled


def test_event_failure_raises_in_process():
    sim = Simulator()
    event = sim.event()
    caught = []

    def waiter():
        try:
            yield event
        except RuntimeError as error:
            caught.append(str(error))

    sim.process(waiter())
    event.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_is_event_and_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        value = yield sim.process(child())
        return value

    parent_process = sim.process(parent())
    sim.run()
    assert parent_process.triggered
    assert parent_process.value == "done"


def test_interrupt_reaches_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))

    process = sim.process(sleeper())

    def killer():
        yield sim.timeout(3.0)
        process.interrupt("deadline")

    sim.process(killer())
    sim.run()
    assert log == [("interrupted", "deadline", 3.0)]


def test_interrupting_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    process = sim.process(quick())
    sim.run()
    assert not process.is_alive
    process.interrupt("late")  # must not raise
    sim.run()


def test_process_exception_propagates_as_failed_event():
    sim = Simulator()

    def broken():
        yield sim.timeout(1.0)
        raise ValueError("model bug")

    process = sim.process(broken())
    sim.run()
    assert process.triggered
    assert not process.ok
    assert isinstance(process.value, ValueError)


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def wrong():
        yield 42

    process = sim.process(wrong())
    sim.run()
    assert not process.ok
    assert isinstance(process.value, TypeError)


def test_run_until_advances_clock_exactly_to_horizon():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert sim.peek() == 10.0


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_events_at_same_time_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        timeout = sim.timeout(1.0)
        timeout.callbacks.append(lambda evt, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_any_of_fires_on_first_child():
    sim = Simulator()
    slow = sim.timeout(10.0, value="slow")
    fast = sim.timeout(2.0, value="fast")
    results = []

    def waiter():
        event, value = yield sim.any_of([slow, fast])
        results.append((value, sim.now))

    sim.process(waiter())
    sim.run()
    assert results == [("fast", 2.0)]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    first = sim.timeout(1.0)
    second = sim.timeout(5.0)
    when = []

    def waiter():
        yield sim.all_of([first, second])
        when.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert when == [5.0]


def test_all_of_value_is_child_values_when_children_fire_later():
    sim = Simulator()
    first = sim.timeout(1.0, value="a")
    second = sim.timeout(5.0, value="b")
    received = []

    def waiter():
        values = yield sim.all_of([first, second])
        received.append(values)

    sim.process(waiter())
    sim.run()
    assert received == [["a", "b"]]  # in construction order, not fire order


def test_all_of_value_is_child_values_when_children_pre_triggered():
    sim = Simulator()
    first = sim.event().succeed("x")
    second = sim.event().succeed("y")
    composite = sim.all_of([first, second])
    sim.run()
    assert composite.triggered
    assert composite.value == ["x", "y"]


def test_all_of_mixed_pre_triggered_and_pending_children():
    sim = Simulator()
    already = sim.event().succeed("done")
    pending = sim.timeout(3.0, value="later")
    received = []

    def waiter():
        values = yield sim.all_of([already, pending])
        received.append((values, sim.now))

    sim.process(waiter())
    sim.run()
    assert received == [(["done", "later"], 3.0)]


def test_peek_skips_cancelled_events():
    sim = Simulator()
    cancelled = sim.timeout(1.0)
    cancelled.cancel()
    sim.timeout(2.0)
    assert sim.peek() == 2.0
