"""Unit tests for the parameter tables and workload presets."""

import pytest

from repro.rtdbs.config import (
    CPUCosts,
    DatabaseParams,
    PMMParams,
    QueryClass,
    RelationGroup,
    ResourceParams,
    SimulationConfig,
    WorkloadParams,
)
from repro.workloads.presets import (
    baseline,
    disk_contention,
    external_sort_workload,
    multiclass,
    scaled_contention,
    workload_changes,
)


# ----------------------------------------------------------------------
# Tables 1-4 defaults match the paper
# ----------------------------------------------------------------------
def test_table1_pmm_defaults():
    params = PMMParams()
    assert params.sample_size == 30
    assert params.util_low == 0.70
    assert params.util_high == 0.85
    assert params.adapt_conf_level == 0.95
    assert params.change_conf_level == 0.99


def test_table3_resource_defaults():
    resources = ResourceParams()
    assert resources.cpu_mips == 40.0
    assert resources.num_disks == 10
    assert resources.rotation_ms == 16.7
    assert resources.num_cylinders == 1500
    assert resources.cylinder_size == 90
    assert resources.page_size == 8192
    assert resources.block_size == 6
    assert resources.memory_pages == 2560
    assert resources.disk_cache_pages == 32  # 256 KB of 8 KB pages


def test_table4_cpu_costs():
    costs = CPUCosts()
    assert costs.start_io == 1000
    assert costs.initiate_query == 40_000
    assert costs.terminate_query == 10_000
    assert costs.hash_insert == 100
    assert costs.hash_probe == 200
    assert costs.hash_output == 100
    assert costs.sort_copy == 64
    assert costs.key_compare == 50


def test_seek_time_follows_bitton_gray():
    resources = ResourceParams()
    assert resources.seek_time(0) == 0.0
    assert resources.seek_time(100) == pytest.approx(0.617e-3 * 10.0)


def test_bad_parameter_tables_rejected():
    with pytest.raises(ValueError):
        PMMParams(util_low=0.9, util_high=0.8).validate()
    with pytest.raises(ValueError):
        ResourceParams(num_disks=0).validate()
    with pytest.raises(ValueError):
        ResourceParams(block_size=1000).validate()


def test_tuples_per_page_derivation():
    config = baseline()
    assert config.tuples_per_page == 8192 // 200


# ----------------------------------------------------------------------
# workload validation
# ----------------------------------------------------------------------
def test_join_class_needs_two_groups():
    with pytest.raises(ValueError):
        QueryClass("j", "hash_join", (0,), 0.1).validate(num_groups=2)


def test_sort_class_needs_one_group():
    with pytest.raises(ValueError):
        QueryClass("s", "external_sort", (0, 1), 0.1).validate(num_groups=2)


def test_unknown_query_type_rejected():
    with pytest.raises(ValueError):
        QueryClass("x", "nested_loops", (0, 1), 0.1).validate(num_groups=2)


def test_duplicate_class_names_rejected():
    classes = (
        QueryClass("dup", "external_sort", (0,), 0.1),
        QueryClass("dup", "external_sort", (0,), 0.1),
    )
    with pytest.raises(ValueError):
        WorkloadParams(classes=classes).validate(num_groups=1)


# ----------------------------------------------------------------------
# presets (Tables 6 and 8)
# ----------------------------------------------------------------------
def test_baseline_matches_table6():
    config = baseline(arrival_rate=0.05, scale=1.0)
    assert config.resources.num_disks == 10
    assert config.resources.memory_pages == 2560
    groups = config.database.groups
    assert groups[0].size_range == (600, 1800)
    assert groups[1].size_range == (3000, 9000)
    medium = config.workload.classes[0]
    assert medium.query_type == "hash_join"
    assert medium.slack_range == (2.5, 7.5)
    assert medium.arrival_rate == pytest.approx(0.05)


def test_disk_contention_has_six_disks():
    config = disk_contention(scale=1.0)
    assert config.resources.num_disks == 6


def test_workload_changes_matches_table8():
    config = workload_changes(scale=1.0)
    assert config.database.num_groups == 4
    assert config.database.groups[2].size_range == (50, 150)
    assert config.database.groups[3].size_range == (250, 750)
    by_name = {cls.name: cls for cls in config.workload.classes}
    assert by_name["Medium"].arrival_rate == pytest.approx(0.07)
    assert by_name["Small"].arrival_rate == pytest.approx(2.8)
    assert by_name["Small"].rel_groups == (2, 3)


def test_multiclass_has_twelve_disks():
    config = multiclass(scale=1.0)
    assert config.resources.num_disks == 12
    assert {cls.name for cls in config.workload.classes} == {"Medium", "Small"}


def test_sort_workload_single_class():
    config = external_sort_workload(scale=1.0)
    assert config.workload.classes[0].query_type == "external_sort"
    assert config.workload.classes[0].rel_groups == (0,)


def test_scaling_shrinks_sizes_and_raises_rates():
    small = baseline(arrival_rate=0.06, scale=0.1)
    assert small.resources.memory_pages == 256
    assert small.database.groups[0].size_range == (60, 180)
    assert small.workload.classes[0].arrival_rate == pytest.approx(0.6)


def test_scaled_contention_grows_disk_geometry():
    config = scaled_contention(factor=10.0, base_scale=0.1)
    assert config.resources.memory_pages == 2560
    # Disks must be big enough for the x10 relations.
    assert config.resources.num_cylinders >= 1500


def test_with_overrides_round_trip():
    config = baseline()
    quiet = config.with_overrides(seed=99, temp_placement="round_robin")
    assert quiet.seed == 99
    assert quiet.temp_placement == "round_robin"
    assert config.seed != 99  # original untouched


def test_invalid_override_caught_by_validate():
    config = baseline()
    with pytest.raises(ValueError):
        config.with_overrides(temp_placement="ramdisk").validate()
