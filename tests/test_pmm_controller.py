"""Unit tests for the PMM controller's mode logic (no simulator)."""

import pytest

from repro.core.allocation import QueryDemand
from repro.core.pmm import MODE_MAX, MODE_MINMAX, PMM
from repro.policies.base import BatchStats, DepartureRecord
from repro.rtdbs.config import PMMParams


def departure(qid, missed=False, waiting=5.0, execution=10.0, constraint=60.0):
    return DepartureRecord(
        qid=qid,
        class_name="Medium",
        missed=missed,
        arrival=0.0,
        departure=100.0,
        waiting_time=waiting,
        execution_time=execution,
        time_constraint=constraint,
        max_demand=1321,
        min_demand=37,
        operand_io_count=1200,
    )


def batch(time=100.0, served=30, missed=3, mpl=1.5, cpu=0.1, disks=(0.2, 0.2)):
    return BatchStats(
        time=time,
        served=served,
        missed=missed,
        realized_mpl=mpl,
        cpu_utilization=cpu,
        disk_utilizations=tuple(disks),
    )


def feed_switch_conditions(pmm, n=40):
    """Departures that satisfy switch conditions 3 and 4."""
    for qid in range(n):
        pmm.on_departure(departure(qid, waiting=5.0 + 0.1 * (qid % 7)))


def test_starts_in_max_mode():
    pmm = PMM(PMMParams())
    assert pmm.mode == MODE_MAX
    assert pmm.target_mpl is None


def test_allocates_like_max_in_max_mode():
    pmm = PMM(PMMParams())
    demands = [QueryDemand(1, 1.0, 10, 100), QueryDemand(2, 2.0, 10, 100)]
    allocation = pmm.allocate(demands, 150)
    assert allocation == {1: 100, 2: 0}


def test_switches_to_minmax_when_all_conditions_hold():
    pmm = PMM(PMMParams())
    feed_switch_conditions(pmm)
    changed = pmm.on_batch(batch(missed=3, cpu=0.1, disks=(0.2, 0.25)))
    assert changed
    assert pmm.mode == MODE_MINMAX
    assert pmm.target_mpl is not None and pmm.target_mpl >= 1


def test_no_switch_without_misses():
    pmm = PMM(PMMParams())
    feed_switch_conditions(pmm)
    assert not pmm.on_batch(batch(missed=0))
    assert pmm.mode == MODE_MAX


def test_no_switch_when_a_resource_is_loaded():
    pmm = PMM(PMMParams())
    feed_switch_conditions(pmm)
    assert not pmm.on_batch(batch(disks=(0.2, 0.9)))  # disk near saturation
    assert pmm.mode == MODE_MAX


def test_no_switch_without_admission_waiting():
    pmm = PMM(PMMParams())
    for qid in range(40):
        pmm.on_departure(departure(qid, waiting=0.0))
    assert not pmm.on_batch(batch())
    assert pmm.mode == MODE_MAX


def test_no_switch_when_constraints_are_tight():
    pmm = PMM(PMMParams())
    for qid in range(40):
        # Execution time ~ the whole constraint: MinMax would be fatal.
        pmm.on_departure(departure(qid, execution=60.0, constraint=60.0))
    assert not pmm.on_batch(batch())
    assert pmm.mode == MODE_MAX


def test_allocates_like_minmax_with_target_in_minmax_mode():
    pmm = PMM(PMMParams())
    feed_switch_conditions(pmm)
    pmm.on_batch(batch())
    assert pmm.mode == MODE_MINMAX
    pmm.target = 1  # force a tight limit
    demands = [QueryDemand(1, 1.0, 10, 100), QueryDemand(2, 2.0, 10, 100)]
    allocation = pmm.allocate(demands, 1000)
    assert allocation == {1: 100, 2: 0}


def test_reverts_to_max_when_target_sinks_to_max_mode_mpl():
    pmm = PMM(PMMParams())
    # A couple of Max-mode batches with realized MPL ~2.
    for qid in range(40):
        pmm.on_departure(departure(qid))
    pmm.on_batch(batch(missed=0, mpl=2.0))
    feed_switch_conditions(pmm)
    pmm.on_batch(batch(mpl=2.0))
    assert pmm.mode == MODE_MINMAX
    # Engineer projection data whose optimum is below the Max-mode MPL.
    # The next on_batch adds one more observation at the current target
    # with the batch's miss ratio, so keep that consistent with the
    # engineered bowl by reporting a high miss ratio (27/30 = 0.9).
    pmm.projection.reset()
    for mpl, miss in [(1, 0.3), (2, 0.25), (3, 0.28), (6, 0.5), (9, 0.9)]:
        pmm.projection.observe(mpl, miss)
    pmm.on_batch(batch(mpl=2.0, missed=27))
    assert pmm.mode == MODE_MAX
    assert pmm.target_mpl is None


def test_workload_change_restarts_pmm():
    pmm = PMM(PMMParams())
    feed_switch_conditions(pmm)
    pmm.on_batch(batch())
    assert pmm.mode == MODE_MINMAX
    # A drastically different workload for two batches: the detector
    # compares batch N against batch N-1.
    for qid in range(30):
        record = DepartureRecord(
            qid=1000 + qid,
            class_name="Small",
            missed=False,
            arrival=0.0,
            departure=200.0,
            waiting_time=0.1,
            execution_time=1.0,
            time_constraint=5.0,
            max_demand=111,
            min_demand=12,
            operand_io_count=30,
        )
        pmm.on_departure(record)
    changed = pmm.on_batch(batch(time=200.0))
    assert changed
    assert pmm.restarts == 1
    assert pmm.mode == MODE_MAX
    assert pmm.projection.count == 0


def test_trace_records_every_batch():
    pmm = PMM(PMMParams())
    for index in range(3):
        for qid in range(30):
            pmm.on_departure(departure(index * 30 + qid))
        pmm.on_batch(batch(time=100.0 * (index + 1)))
    assert len(pmm.mpl_trace) == 3
    assert len(pmm.mode_trace) == 3


def test_describe_reflects_mode():
    pmm = PMM(PMMParams())
    assert "Max" in pmm.describe()
    feed_switch_conditions(pmm)
    pmm.on_batch(batch())
    assert "MinMax" in pmm.describe()


def test_reset_restores_pristine_state():
    pmm = PMM(PMMParams())
    feed_switch_conditions(pmm)
    pmm.on_batch(batch())
    pmm.reset()
    assert pmm.mode == MODE_MAX
    assert pmm.restarts == 0
    assert pmm.mpl_trace == []
    assert pmm.batches_seen == 0
