"""Unit tests for the experiment harness (runner caches, figure plumbing)."""

import pytest

from repro.experiments import runner
from repro.experiments.figures import FigureResult, make_phases
from repro.experiments.runner import (
    ExperimentSettings,
    SetupSignatureError,
    clear_cache,
    run_config,
    sweep,
)
from repro.workloads.presets import baseline


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    """Fresh memo + a throwaway disk cache, serial execution."""
    monkeypatch.setattr(runner, "_jobs_override", 1)
    monkeypatch.setattr(runner, "_cache_dir_override", str(tmp_path / "cache"))
    monkeypatch.setattr(runner, "_cache_enabled_override", True)
    clear_cache()
    yield
    clear_cache()


TINY = ExperimentSettings(scale=0.1, duration=250.0, seed=3)


def test_run_config_caches_identical_runs():
    config = baseline(arrival_rate=0.05, scale=0.1, seed=3)
    first = run_config(config, "minmax", TINY)
    second = run_config(config, "minmax", TINY)
    assert first is second  # memoised


def test_run_config_distinguishes_policies():
    config = baseline(arrival_rate=0.05, scale=0.1, seed=3)
    first = run_config(config, "minmax", TINY)
    second = run_config(config, "max", TINY)
    assert first is not second


def test_run_config_distinguishes_settings():
    config = baseline(arrival_rate=0.05, scale=0.1, seed=3)
    first = run_config(config, "minmax", TINY)
    longer = ExperimentSettings(scale=0.1, duration=300.0, seed=3)
    second = run_config(config, "minmax", longer)
    assert first is not second


def test_setup_hook_without_signature_refuses_to_cache():
    config = baseline(arrival_rate=0.05, scale=0.1, seed=3)
    with pytest.raises(SetupSignatureError):
        run_config(config, "minmax", TINY, setup=lambda system: None)


def test_setup_hook_runs_uncached_when_asked():
    config = baseline(arrival_rate=0.05, scale=0.1, seed=3)
    calls = []
    first = run_config(
        config, "minmax", TINY, setup=lambda system: calls.append(1), cache=False
    )
    second = run_config(
        config, "minmax", TINY, setup=lambda system: calls.append(1), cache=False
    )
    assert calls == [1, 1]  # really ran twice
    assert first is not second
    assert first.equals_exactly(second)  # same seed, same experiment


def test_setup_hook_with_signature_is_cached():
    config = baseline(arrival_rate=0.05, scale=0.1, seed=3)
    calls = []
    first = run_config(
        config,
        "minmax",
        TINY,
        setup=lambda system: calls.append(1),
        setup_signature=("noop-setup",),
    )
    second = run_config(
        config,
        "minmax",
        TINY,
        setup=lambda system: calls.append(1),
        setup_signature=("noop-setup",),
    )
    assert calls == [1]
    assert first is second


def test_sweep_returns_per_policy_series():
    configs = [
        (rate, baseline(arrival_rate=rate, scale=0.1, seed=3)) for rate in (0.04, 0.05)
    ]
    results = sweep(configs, ("max", "minmax"), TINY)
    assert set(results) == {"max", "minmax"}
    for series in results.values():
        assert [x for x, _r in series] == [0.04, 0.05]


def test_figure_result_accessors():
    figure = FigureResult(
        figure_id="Figure X",
        title="t",
        x_label="x",
        y_label="y",
        series={"a": [(1.0, 0.5), (2.0, 0.7)]},
    )
    assert figure.value("a", 1.0) == 0.5
    assert figure.final_value("a") == 0.7
    with pytest.raises(KeyError):
        figure.value("a", 9.0)
    rendered = figure.render()
    assert "Figure X" in rendered and "a y" in rendered


def test_make_phases_alternate_and_scale():
    settings = ExperimentSettings(scale=0.1, duration=0.0, seed=5)
    phases = make_phases(settings, num_phases=4)
    assert [name for _s, _e, name in phases] == ["Medium", "Small", "Medium", "Small"]
    for start, end, _name in phases:
        length = end - start
        # 2-5 hours scaled by 0.1.
        assert 720.0 <= length <= 1800.0
    # Contiguous coverage.
    for (_s1, end1, _n1), (start2, _e2, _n2) in zip(phases, phases[1:]):
        assert end1 == start2


def test_make_phases_reproducible():
    settings = ExperimentSettings(scale=0.1, duration=0.0, seed=5)
    assert make_phases(settings) == make_phases(settings)


def test_cli_list_smoke(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    output = capsys.readouterr().out
    assert "fig3" in output and "sec57" in output


def test_cli_rejects_unknown_experiment():
    from repro.experiments.__main__ import main

    assert main(["figure-99"]) == 2
