"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    QueryDemand,
    allocate_max,
    allocate_minmax,
    allocate_proportional,
)
from repro.core.projection import CurveType, MissRatioProjection
from repro.core.ru_heuristic import UtilizationLine
from repro.rtdbs.database import TempSpace
from repro.sim.monitor import Tally
from repro.sim.statmath import normal_ppf

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
demand_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=60),  # min pages
        st.integers(min_value=0, max_value=400),  # extra to max
    ),
    min_size=0,
    max_size=12,
).map(
    lambda pairs: [
        QueryDemand(qid=i, priority=float(i), min_pages=low, max_pages=low + extra)
        for i, (low, extra) in enumerate(pairs)
    ]
)

memories = st.integers(min_value=0, max_value=2000)


# ----------------------------------------------------------------------
# allocation invariants
# ----------------------------------------------------------------------
@given(demands=demand_lists, memory=memories)
def test_max_allocation_invariants(demands, memory):
    allocation = allocate_max(demands, memory)
    assert set(allocation) == {d.qid for d in demands}
    assert sum(allocation.values()) <= memory
    for demand in demands:
        assert allocation[demand.qid] in (0, demand.max_pages)


@given(demands=demand_lists, memory=memories, limit=st.one_of(st.none(), st.integers(0, 15)))
def test_minmax_allocation_invariants(demands, memory, limit):
    allocation = allocate_minmax(demands, memory, limit)
    assert sum(allocation.values()) <= memory
    admitted = [d for d in demands if allocation[d.qid] > 0]
    if limit is not None:
        assert len(admitted) <= limit
    partial = 0
    for demand in demands:
        pages = allocation[demand.qid]
        assert pages == 0 or demand.min_pages <= pages <= demand.max_pages
        if demand.min_pages < pages < demand.max_pages:
            partial += 1
    # The two-pass procedure leaves at most one in-between allocation.
    assert partial <= 1


@given(demands=demand_lists, memory=memories)
def test_minmax_ed_dominance(demands, memory):
    """A more urgent admitted query never holds less than a less
    urgent one with an equal-or-smaller demand envelope."""
    allocation = allocate_minmax(demands, memory)
    admitted = [d for d in demands if allocation[d.qid] > 0]
    for earlier, later in zip(admitted, admitted[1:]):
        if earlier.max_pages >= later.max_pages and earlier.min_pages >= later.min_pages:
            assert allocation[earlier.qid] >= allocation[later.qid] or (
                allocation[earlier.qid] == earlier.max_pages
            )


@given(demands=demand_lists, memory=memories, limit=st.one_of(st.none(), st.integers(0, 15)))
def test_proportional_allocation_invariants(demands, memory, limit):
    allocation = allocate_proportional(demands, memory, limit)
    assert sum(allocation.values()) <= memory
    for demand in demands:
        pages = allocation[demand.qid]
        assert pages == 0 or demand.min_pages <= pages <= demand.max_pages


@given(demands=demand_lists, memory=memories)
def test_more_memory_never_hurts_admission(demands, memory):
    fewer = allocate_minmax(demands, memory)
    more = allocate_minmax(demands, memory + 100)
    admitted_fewer = sum(1 for pages in fewer.values() if pages > 0)
    admitted_more = sum(1 for pages in more.values() if pages > 0)
    assert admitted_more >= admitted_fewer


# ----------------------------------------------------------------------
# projection properties
# ----------------------------------------------------------------------
@given(
    coefficients=st.tuples(
        st.floats(min_value=1e-4, max_value=0.01),
        st.floats(min_value=2.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=0.3),
    ),
    mpls=st.lists(st.integers(1, 40), min_size=4, max_size=15, unique=True),
)
def test_projection_recovers_noiseless_quadratics(coefficients, mpls):
    curvature, vertex, floor = coefficients
    projection = MissRatioProjection()
    usable = []
    for mpl in mpls:
        miss = curvature * (mpl - vertex) ** 2 + floor
        if 0.0 <= miss <= 1.0:
            projection.observe(mpl, miss)
            usable.append(mpl)
    if len(set(usable)) < 3:
        return  # not enough distinct observations to fit
    result = projection.project()
    if result.curve_type is CurveType.BOWL:
        assert abs(result.target - vertex) <= 1.0
    elif result.curve_type is CurveType.DECREASING:
        assert vertex >= max(usable) - 1
    elif result.curve_type is CurveType.INCREASING:
        assert vertex <= min(usable) + 1


@given(st.lists(st.tuples(st.integers(1, 30), st.floats(0, 1)), min_size=1, max_size=60))
def test_projection_sums_match_direct_computation(points):
    projection = MissRatioProjection()
    for mpl, miss in points:
        projection.observe(mpl, miss)
    assert projection.count == len(points)
    assert projection.sum_mpl == sum(m for m, _ in points)
    assert math.isclose(projection.sum_miss, sum(y for _, y in points), rel_tol=1e-9)


# ----------------------------------------------------------------------
# utilisation line
# ----------------------------------------------------------------------
@given(
    slope=st.floats(min_value=0.001, max_value=0.05),
    intercept=st.floats(min_value=0.0, max_value=0.3),
    mpls=st.lists(st.integers(1, 20), min_size=2, max_size=20, unique=True),
)
def test_line_fit_exact_on_linear_data(slope, intercept, mpls):
    line = UtilizationLine()
    for mpl in mpls:
        line.observe(mpl, min(1.0, intercept + slope * mpl))
    if all(intercept + slope * m <= 1.0 for m in mpls):
        predicted = line.predict(10)
        assert predicted is not None
        assert math.isclose(predicted, intercept + slope * 10, rel_tol=1e-6, abs_tol=1e-9)


# ----------------------------------------------------------------------
# tally vs numpy
# ----------------------------------------------------------------------
@given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=200))
def test_tally_matches_numpy(values):
    import numpy as np

    tally = Tally()
    for value in values:
        tally.record(value)
    assert math.isclose(tally.mean(), float(np.mean(values)), rel_tol=1e-6, abs_tol=1e-6)
    assert math.isclose(
        tally.variance(), float(np.var(values, ddof=1)), rel_tol=1e-4, abs_tol=1e-4
    )


# ----------------------------------------------------------------------
# temp space allocator
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=30),
    st.randoms(use_true_random=False),
)
@settings(max_examples=50)
def test_temp_space_allocate_release_conserves(sizes, rnd):
    space = TempSpace(0, [(0, 2000)])
    live = []
    for size in sizes:
        extent = space.allocate(size)
        if not extent.virtual:
            live.append(extent)
        if live and rnd.random() < 0.4:
            space.release(live.pop(rnd.randrange(len(live))))
    for extent in live:
        space.release(extent)
    assert space.free_pages == 2000


# ----------------------------------------------------------------------
# normal quantile symmetry
# ----------------------------------------------------------------------
@given(st.floats(min_value=0.01, max_value=0.99))
def test_normal_ppf_symmetry(p):
    assert math.isclose(normal_ppf(p), -normal_ppf(1 - p), rel_tol=1e-9, abs_tol=1e-9)
