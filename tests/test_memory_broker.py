"""The MemoryBroker: admission semantics, feedback cadence, and the
broker/simulator parity contract (trace replay equals the DES decision
stream, decision for decision, for every policy)."""

import pytest

from repro import RTDBSystem, baseline
from repro.core.broker import (
    BrokerTrace,
    MemoryBroker,
    replay_trace,
)
from repro.policies import DEFAULT_POLICIES, make_policy
from repro.policies.base import BatchStats


def minmax_broker(**overrides):
    kwargs = dict(total_pages=100, sample_size=5)
    kwargs.update(overrides)
    return MemoryBroker(make_policy("minmax"), **kwargs)


# ----------------------------------------------------------------------
# population and admission
# ----------------------------------------------------------------------
def test_register_enters_wait_queue_without_memory():
    broker = minmax_broker()
    entry = broker.register(1, "C0", priority=50.0, min_pages=10, max_pages=40)
    assert entry.state == "waiting"
    assert entry.pages == 0
    assert broker.waiting_count == 1
    assert broker.admitted_count == 0


def test_reallocate_admits_in_ed_order_within_memory():
    broker = minmax_broker(total_pages=50)
    broker.register(1, "C0", priority=90.0, min_pages=30, max_pages=45)
    broker.register(2, "C0", priority=10.0, min_pages=30, max_pages=45)  # urgent
    decision = broker.reallocate(now=0.0)
    # Only the more urgent query fits its minimum; ED order puts it first.
    assert decision.order == (2, 1)
    assert decision.admitted == (2,)
    assert decision.allocation[2] >= 30
    assert decision.allocation.get(1, 0) == 0
    assert broker.entry(2).state == "running"
    assert broker.entry(1).state == "waiting"
    assert broker.admitted_count == 1
    assert broker.waiting_count == 1


def test_departure_driven_reallocation_admits_the_waiter():
    broker = minmax_broker(total_pages=50)
    broker.register(1, "C0", priority=90.0, min_pages=30, max_pages=45)
    broker.register(2, "C0", priority=10.0, min_pages=30, max_pages=45)
    broker.reallocate(now=0.0)
    broker.release(2)
    decision = broker.reallocate(now=1.0)
    assert decision.admitted == (1,)
    assert broker.admitted_count == 1


def test_duplicate_registration_rejected():
    broker = minmax_broker()
    broker.register(1, "C0", priority=1.0, min_pages=1, max_pages=2)
    with pytest.raises(ValueError):
        broker.register(1, "C0", priority=1.0, min_pages=1, max_pages=2)


def test_mpl_limit_policy_caps_admissions():
    broker = MemoryBroker(make_policy("minmax-2"), total_pages=1000, sample_size=5)
    for qid in range(5):
        broker.register(qid, "C0", priority=float(qid), min_pages=10, max_pages=20)
    broker.reallocate(now=0.0)
    assert broker.admitted_count == 2  # the two most urgent only
    assert {e.qid for e in broker.present if e.pages > 0} == {0, 1}


# ----------------------------------------------------------------------
# departure counters and the batch window
# ----------------------------------------------------------------------
def _departure_record(qid, missed):
    from repro.policies.base import DepartureRecord

    return DepartureRecord(
        qid=qid,
        class_name="C0",
        missed=missed,
        arrival=0.0,
        departure=1.0,
        waiting_time=0.1,
        execution_time=0.9,
        time_constraint=5.0,
        max_demand=10,
        min_demand=2,
        operand_io_count=4,
    )


def test_batch_window_closes_every_sample_size_departures():
    broker = minmax_broker(sample_size=3)
    windows = []
    for qid in range(7):
        broker.note_departure(missed=qid % 2 == 0)
        window = broker.departure_feedback(_departure_record(qid, qid % 2 == 0))
        if window is not None:
            windows.append(window)
            broker.deliver_batch(
                BatchStats(
                    time=float(qid),
                    served=window.served,
                    missed=window.missed,
                    realized_mpl=1.0,
                    cpu_utilization=0.5,
                )
            )
    assert [w.served for w in windows] == [3, 3]
    assert [w.missed for w in windows] == [2, 1]
    assert broker.batches_delivered == 2
    assert broker.departures == 7
    assert broker.completions + broker.misses == 7


# ----------------------------------------------------------------------
# trace replay: the broker is deterministic in its operation stream
# ----------------------------------------------------------------------
def test_trace_records_and_replays_synthetic_stream():
    trace = BrokerTrace()
    broker = MemoryBroker(
        make_policy("minmax"), total_pages=60, sample_size=4, recorder=trace
    )
    broker.register(1, "C0", priority=9.0, min_pages=20, max_pages=50)
    broker.reallocate(now=0.0)
    broker.register(2, "C1", priority=3.0, min_pages=20, max_pages=50)
    broker.reallocate(now=0.5)
    broker.release(1)
    broker.note_departure(missed=False)
    broker.departure_feedback(_departure_record(1, False))
    broker.reallocate(now=1.0)
    decisions = trace.decisions
    assert len(decisions) == 3
    replayed = replay_trace(
        trace.ops, make_policy("minmax"), total_pages=60, sample_size=4
    )
    assert replayed == decisions


# ----------------------------------------------------------------------
# broker/simulator parity: replaying a DES run's trace through a fresh
# standalone broker reproduces the decision stream exactly
# ----------------------------------------------------------------------
def parity_config():
    return baseline(arrival_rate=0.3, scale=0.05, seed=3, duration=80.0)


@pytest.mark.parametrize("policy", DEFAULT_POLICIES)
def test_simulator_trace_replays_decision_for_decision(policy):
    config = parity_config()
    trace = BrokerTrace()
    system = RTDBSystem(config, policy)
    system.query_manager.broker.recorder = trace
    result = system.run()
    assert result.served > 10  # the trace exercises real churn

    recorded = trace.decisions
    assert len(recorded) > result.served  # >= one decision per arrival+departure
    replayed = replay_trace(
        trace.ops,
        make_policy(policy, config.pmm),
        total_pages=config.resources.memory_pages,
        sample_size=config.pmm.sample_size,
    )
    assert replayed == recorded


def test_query_manager_counters_delegate_to_broker():
    system = RTDBSystem(parity_config(), "minmax")
    result = system.run()
    manager = system.query_manager
    assert manager.departures == manager.broker.departures == result.served
    assert manager.completions == manager.broker.completions == result.completed
    assert manager.misses == manager.broker.misses == result.missed
    assert manager.batches_delivered == manager.broker.batches_delivered
