"""Unit tests for the workload-change detector."""

import numpy as np
import pytest

from repro.core.change_detection import WorkloadChangeDetector, WorkloadSample


def feed_batch(detector, rng, memory_mean, io_mean, constraint_mean, n=30):
    for _ in range(n):
        detector.observe(
            WorkloadSample(
                max_memory_demand=max(1, int(rng.normal(memory_mean, memory_mean * 0.1))),
                operand_io_count=max(1, int(rng.normal(io_mean, io_mean * 0.1))),
                time_constraint=float(
                    max(0.1, rng.normal(constraint_mean, constraint_mean * 0.1))
                ),
            )
        )
    return detector.end_batch()


def test_first_batch_only_establishes_reference():
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(1)
    assert not feed_batch(detector, rng, 1300, 200, 100.0)


def test_stable_workload_not_flagged():
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(2)
    feed_batch(detector, rng, 1300, 200, 100.0)
    for _ in range(10):
        assert not feed_batch(detector, rng, 1300, 200, 100.0)
    assert detector.changes_detected == 0


def test_memory_demand_shift_detected():
    # The Medium -> Small switch of Section 5.3: max demand drops from
    # ~1321 to ~111 pages.
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(3)
    feed_batch(detector, rng, 1321, 200, 100.0)
    assert feed_batch(detector, rng, 111, 20, 100.0)
    assert detector.changes_detected == 1


def test_constraint_shift_alone_detected():
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(4)
    feed_batch(detector, rng, 1300, 200, 100.0)
    assert feed_batch(detector, rng, 1300, 200, 400.0)


def test_reference_resets_after_change():
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(5)
    feed_batch(detector, rng, 1300, 200, 100.0)
    assert feed_batch(detector, rng, 111, 20, 30.0)
    # The batch right after a change only re-establishes the reference.
    assert not feed_batch(detector, rng, 111, 20, 30.0)
    # And the new workload is then stable.
    assert not feed_batch(detector, rng, 111, 20, 30.0)
    assert detector.changes_detected == 1


def test_normalized_constraint_is_per_io():
    sample = WorkloadSample(
        max_memory_demand=100, operand_io_count=50, time_constraint=200.0
    )
    assert sample.normalized_constraint == pytest.approx(4.0)


def test_zero_io_count_guarded():
    sample = WorkloadSample(max_memory_demand=1, operand_io_count=0, time_constraint=7.0)
    assert sample.normalized_constraint == pytest.approx(7.0)


def test_reset_clears_reference():
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(6)
    feed_batch(detector, rng, 1300, 200, 100.0)
    detector.reset()
    # After a reset the next batch is a reference batch again.
    assert not feed_batch(detector, rng, 111, 20, 30.0)


def test_bad_confidence_rejected():
    with pytest.raises(ValueError):
        WorkloadChangeDetector(0.4)


def test_small_batches_are_conservative():
    detector = WorkloadChangeDetector(0.99)
    rng = np.random.default_rng(7)
    feed_batch(detector, rng, 1300, 200, 100.0, n=5)
    assert not feed_batch(detector, rng, 111, 20, 30.0, n=5)
