"""Smoke tests: every script in examples/ runs end to end (reduced scale).

Each example is imported as a module and its ``main()`` executed with
its workload shrunk (shorter horizons, fewer grid points) by patching
the module's own references -- the examples themselves stay exactly
what a reader would run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_fully_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart",
        "policy_shootout",
        "adaptive_operators",
        "fair_multiclass",
        "live_serving",
        "multitenant_serving",
    }
    assert scripts == covered, (
        f"examples changed ({scripts ^ covered}); add or remove a smoke test"
    )


def _shrunk(preset, **overrides):
    def wrapper(**kwargs):
        kwargs.update(overrides)
        return preset(**kwargs)

    return wrapper


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.baseline = _shrunk(repro.baseline, duration=400.0)
    module.main()
    output = capsys.readouterr().out
    assert "miss ratio" in output
    assert "PMM adaptation" in output


def test_policy_shootout_runs(capsys, monkeypatch):
    module = load_example("policy_shootout")
    monkeypatch.setattr(sys, "argv", ["policy_shootout"])
    module.baseline = _shrunk(repro.baseline, duration=400.0)
    module.RATES = (0.045,)
    module.POLICIES = ("max", "minmax", "pmm")
    module.main()
    output = capsys.readouterr().out
    assert "miss_ratio" in output
    for policy in ("Max", "MinMax", "PMM"):
        assert policy in output


def test_adaptive_operators_runs(capsys):
    module = load_example("adaptive_operators")
    module.main()  # drives the operators outside the simulator: fast as-is
    output = capsys.readouterr().out
    assert "demand envelope" in output
    assert "merge steps" in output


def test_live_serving_runs(capsys):
    module = load_example("live_serving")
    module.POLICIES = ("max", "minmax")
    module.TIME_SCALE = 0.005
    module.MAX_ARRIVALS = 25
    module.main()
    output = capsys.readouterr().out
    assert "live miss" in output
    assert "MinMax" in output


def test_multitenant_serving_runs(capsys):
    module = load_example("multitenant_serving")
    module.QUERIES_PER_TENANT = 2
    module.TIME_SCALE = 0.005
    module.main()
    output = capsys.readouterr().out
    assert "shared pool" in output
    assert "acme" in output and "globex" in output
    assert "FIFO contention" in output


def test_fair_multiclass_runs(capsys):
    module = load_example("fair_multiclass")
    module.multiclass = _shrunk(repro.multiclass, duration=400.0)
    module.main()
    output = capsys.readouterr().out
    assert "FairPMM" in output
    assert "miss-ratio gap" in output


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "policy_shootout",
        "adaptive_operators",
        "fair_multiclass",
        "live_serving",
        "multitenant_serving",
    ],
)
def test_examples_have_docstring_run_line(name):
    module = load_example(name)
    assert module.__doc__ and "Run:" in module.__doc__
