"""Unit tests for the buffer manager: reservations + LRU data cache."""

import pytest

from repro.rtdbs.buffer_manager import BufferManager, LRUDataCache
from repro.sim.simulator import Simulator


def make_manager(total=100):
    return BufferManager(Simulator(), total)


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
def test_lru_evicts_least_recently_used():
    cache = LRUDataCache(3)
    cache.insert(0, 1, 1)
    cache.insert(0, 2, 1)
    cache.insert(0, 3, 1)
    assert cache.contains_all(0, 1, 1)  # touch page 1 -> MRU
    cache.insert(0, 4, 1)  # evicts page 2 (the LRU)
    assert cache.contains_all(0, 1, 1)
    assert not cache.contains_all(0, 2, 1)
    assert cache.contains_all(0, 3, 1)


def test_lru_shrinking_capacity_evicts():
    cache = LRUDataCache(5)
    cache.insert(0, 0, 5)
    cache.capacity = 2
    assert len(cache) == 2


def test_lru_zero_capacity_accepts_nothing():
    cache = LRUDataCache(0)
    cache.insert(0, 0, 3)
    assert len(cache) == 0


def test_lru_counts_hits_and_misses():
    cache = LRUDataCache(10)
    cache.insert(0, 0, 4)
    assert cache.contains_all(0, 0, 4)
    assert not cache.contains_all(0, 2, 4)
    assert cache.hits == 1
    assert cache.misses == 1


def test_lru_keys_by_disk():
    cache = LRUDataCache(10)
    cache.insert(0, 7, 1)
    assert not cache.contains_all(1, 7, 1)


# ----------------------------------------------------------------------
# reservations
# ----------------------------------------------------------------------
def test_apply_allocation_tracks_reservations():
    manager = make_manager(100)
    manager.apply_allocation({1: 40, 2: 30})
    assert manager.reserved_pages == 70
    assert manager.free_pages == 30
    assert manager.reservation_of(1) == 40
    assert manager.reservation_of(99) == 0


def test_oversubscription_fails_loudly():
    manager = make_manager(100)
    with pytest.raises(ValueError):
        manager.apply_allocation({1: 60, 2: 60})


def test_release_returns_pages():
    manager = make_manager(100)
    manager.apply_allocation({1: 40, 2: 30})
    manager.release(1)
    assert manager.reserved_pages == 30
    manager.release(1)  # idempotent
    assert manager.reserved_pages == 30


def test_allocation_replaces_previous_vector():
    manager = make_manager(100)
    manager.apply_allocation({1: 40, 2: 30})
    manager.apply_allocation({2: 50})
    assert manager.reservation_of(1) == 0
    assert manager.reservation_of(2) == 50


def test_cache_capacity_follows_free_pages():
    manager = make_manager(100)
    manager.install(0, 0, 80)
    assert len(manager.cache) == 80
    manager.apply_allocation({1: 90})
    # Reservations squeezed the cache down to 10 pages.
    assert manager.cache.capacity == 10
    assert len(manager.cache) == 10


def test_read_hit_roundtrip():
    manager = make_manager(100)
    assert not manager.read_hit(0, 10, 6)
    manager.install(0, 10, 6)
    assert manager.read_hit(0, 10, 6)


def test_zero_pool_rejected():
    with pytest.raises(ValueError):
        make_manager(0)
