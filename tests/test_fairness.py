"""Unit tests for the class-fairness extension (the paper's §5.6
future work) plus an end-to-end check on the multiclass workload."""

import pytest

from repro import RTDBSystem, multiclass
from repro.core.allocation import QueryDemand
from repro.core.fairness import ClassMissTracker, FairPMM
from repro.policies.base import DepartureRecord
from repro.rtdbs.config import PMMParams


def departure(class_name, missed, qid=0):
    return DepartureRecord(
        qid=qid,
        class_name=class_name,
        missed=missed,
        arrival=0.0,
        departure=10.0,
        waiting_time=1.0,
        execution_time=5.0,
        time_constraint=30.0,
        max_demand=100,
        min_demand=10,
        operand_io_count=50,
    )


# ----------------------------------------------------------------------
# tracker
# ----------------------------------------------------------------------
def test_tracker_converges_to_class_rates():
    tracker = ClassMissTracker(smoothing=0.05)
    for index in range(600):
        tracker.observe("A", index % 2 == 0)  # ~50% misses
        tracker.observe("B", False)  # 0% misses
    assert tracker.miss_ratio("A") == pytest.approx(0.5, abs=0.15)
    assert tracker.miss_ratio("B") == pytest.approx(0.0, abs=0.05)
    assert 0.1 < tracker.overall < 0.4


def test_tracker_unknown_class_is_zero():
    assert ClassMissTracker().miss_ratio("nope") == 0.0


def test_tracker_reset():
    tracker = ClassMissTracker()
    tracker.observe("A", True)
    tracker.reset()
    assert tracker.observations == 0
    assert tracker.overall == 0.0


def test_tracker_validates_smoothing():
    with pytest.raises(ValueError):
        ClassMissTracker(smoothing=0.0)


# ----------------------------------------------------------------------
# bias computation
# ----------------------------------------------------------------------
def make_fair(goals=None):
    return FairPMM(PMMParams(), goals=goals)


def feed(fair, a_missing=0.6, b_missing=0.0, n=200):
    for index in range(n):
        fair.on_departure(departure("A", index % 10 < a_missing * 10, qid=index))
        fair.on_departure(departure("B", index % 10 < b_missing * 10, qid=10_000 + index))


def test_bias_pulls_suffering_class_forward():
    fair = make_fair()
    feed(fair, a_missing=0.6, b_missing=0.0)
    assert fair.bias("A") > 1.0
    assert fair.bias("B") < 1.0


def test_bias_neutral_when_balanced():
    fair = make_fair()
    feed(fair, a_missing=0.3, b_missing=0.3)
    assert fair.bias("A") == pytest.approx(fair.bias("B"), rel=0.2)


def test_bias_bounded():
    fair = make_fair()
    feed(fair, a_missing=1.0, b_missing=0.0)
    assert fair.bias("A") <= FairPMM.MAX_BIAS
    assert fair.bias("B") >= 1.0 / FairPMM.MAX_BIAS


def test_goals_shift_the_balance():
    # Tolerating twice the misses for class A means A needs less help.
    lenient = make_fair(goals={"A": 2.0, "B": 1.0})
    strict = make_fair(goals={"A": 0.5, "B": 1.0})
    feed(lenient, a_missing=0.5, b_missing=0.25)
    feed(strict, a_missing=0.5, b_missing=0.25)
    assert strict.bias("A") > lenient.bias("A")


def test_invalid_goal_rejected():
    with pytest.raises(ValueError):
        make_fair(goals={"A": 0.0})


# ----------------------------------------------------------------------
# allocation reordering
# ----------------------------------------------------------------------
def test_allocation_reorders_by_biased_slack():
    fair = make_fair()
    feed(fair, a_missing=0.9, b_missing=0.0)
    # B's query is slightly more urgent, but A's bias overcomes the gap.
    demands = [
        QueryDemand(1, priority=100.0, min_pages=10, max_pages=80, class_name="B"),
        QueryDemand(2, priority=110.0, min_pages=10, max_pages=80, class_name="A"),
    ]
    allocation = fair.allocate(demands, memory=100, now=50.0)
    assert allocation[2] == 80  # the suffering class's query won
    assert allocation[1] == 0


def test_allocation_unbiased_before_enough_observations():
    fair = make_fair()
    demands = [
        QueryDemand(1, priority=100.0, min_pages=10, max_pages=80, class_name="B"),
        QueryDemand(2, priority=110.0, min_pages=10, max_pages=80, class_name="A"),
    ]
    allocation = fair.allocate(demands, memory=100, now=50.0)
    assert allocation[1] == 80  # plain ED order


def test_restart_clears_fairness_state():
    fair = make_fair()
    feed(fair, a_missing=0.9, b_missing=0.0)
    fair._restart(0.0)
    assert fair.tracker.observations == 0


def test_describe_mentions_fairness():
    assert "FairPMM" in make_fair().describe()


# ----------------------------------------------------------------------
# end to end: the Figure 18 bias shrinks under FairPMM
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fairpmm_narrows_class_gap_on_multiclass_workload():
    # 800 simulated seconds keeps the class gap comfortably resolved
    # (gap ~0.52 plain vs ~0.36 fair at this seed) at half the cost of
    # the original 1500-second horizon.
    config = multiclass(small_rate=0.8, medium_rate=0.05, scale=0.1, duration=800.0, seed=7)
    plain = RTDBSystem(config, "pmm").run()
    fair = RTDBSystem(config, "fairpmm").run()

    def gap(result):
        return result.per_class["Medium"].miss_ratio - result.per_class["Small"].miss_ratio

    # The fairness extension must not *increase* the Medium-class bias;
    # typically it narrows it substantially.
    assert gap(fair) <= gap(plain) + 0.02
