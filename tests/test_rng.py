"""Unit tests for the named random-stream registry."""

import pytest

from repro.sim.rng import Stream, Streams


def test_same_name_returns_same_stream():
    streams = Streams(1)
    assert streams.stream("arrivals") is streams.stream("arrivals")


def test_streams_reproducible_across_instances():
    first = Streams(42).stream("arrivals")
    second = Streams(42).stream("arrivals")
    assert [first.uniform(0, 1) for _ in range(5)] == [
        second.uniform(0, 1) for _ in range(5)
    ]


def test_different_names_are_independent():
    streams = Streams(42)
    a = [streams.stream("a").uniform(0, 1) for _ in range(5)]
    b = [streams.stream("b").uniform(0, 1) for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = Streams(1).stream("x").uniform(0, 1)
    b = Streams(2).stream("x").uniform(0, 1)
    assert a != b


def test_consuming_one_stream_leaves_others_untouched():
    reference = Streams(7)
    reference_value = reference.stream("b").uniform(0, 1)

    mixed = Streams(7)
    for _ in range(100):
        mixed.stream("a").uniform(0, 1)  # heavy use of another stream
    assert mixed.stream("b").uniform(0, 1) == reference_value


def test_exponential_mean_roughly_right():
    stream = Streams(3).stream("exp")
    samples = [stream.exponential(2.0) for _ in range(4000)]
    assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)
    assert all(s >= 0 for s in samples)


def test_uniform_respects_bounds():
    stream = Streams(3).stream("uni")
    for _ in range(100):
        value = stream.uniform(2.5, 7.5)
        assert 2.5 <= value < 7.5


def test_integer_inclusive_bounds():
    stream = Streams(3).stream("int")
    values = {stream.integer(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_choice_uniform():
    stream = Streams(3).stream("choice")
    items = ["a", "b", "c"]
    seen = {stream.choice(items) for _ in range(100)}
    assert seen == set(items)


def test_validation_errors():
    stream = Streams(3).stream("v")
    with pytest.raises(ValueError):
        stream.exponential(0.0)
    with pytest.raises(ValueError):
        stream.uniform(5.0, 1.0)
    with pytest.raises(ValueError):
        stream.integer(5, 1)
    with pytest.raises(ValueError):
        stream.choice([])


def test_contains_reports_created_streams():
    streams = Streams(1)
    assert "x" not in streams
    streams.stream("x")
    assert "x" in streams
