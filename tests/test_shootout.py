"""The scenario-shootout harness: matrix execution + cross-checks + CLI."""

import dataclasses

import pytest

from repro.experiments import runner
from repro.experiments.__main__ import main as cli_main
from repro.experiments.shootout import (
    ORDERING_TOLERANCE,
    ScenarioShootoutReport,
    _cross_check,
    scenario_shootout,
)


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    """Point the persistent cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(runner, "_jobs_override", None)
    monkeypatch.setattr(runner, "_cache_dir_override", None)
    monkeypatch.setattr(runner, "_cache_enabled_override", None)
    runner.clear_cache()
    runner.reset_stats()


def small_shootout(**overrides):
    defaults = dict(
        count=4,
        policies=("max", "minmax"),
        scenario_seed=1,
        jobs=1,
    )
    defaults.update(overrides)
    return scenario_shootout(**defaults)


def test_shootout_matrix_passes_and_renders():
    report = small_shootout()
    assert report.ok, report.failures
    assert len(report.results) == 4
    assert all(set(r) == {"max", "minmax"} for r in report.results)
    rendered = report.render()
    assert "All cross-checks passed." in rendered
    assert "miss[max]" in rendered and "miss[minmax]" in rendered
    # Every grid point went through the engine exactly once.
    assert runner.stats.misses == 8


def test_shootout_warm_rerun_served_from_cache():
    small_shootout()
    cold_misses = runner.stats.misses
    runner.reset_stats()
    report = small_shootout()
    assert report.ok
    assert runner.stats.misses == 0
    assert runner.stats.hits == cold_misses


def test_cross_check_flags_policy_dependent_arrivals():
    report = small_shootout()
    doctored = report.results[0]["max"]
    report.results[0]["max"] = dataclasses.replace(
        doctored, arrivals=doctored.arrivals + 1
    )
    report.failures.clear()
    _cross_check(report)
    assert any("arrival counts differ" in failure for failure in report.failures)
    assert any("repro:" in failure for failure in report.failures)


def test_cross_check_flags_inconsistent_result():
    report = small_shootout()
    doctored = report.results[1]["minmax"]
    report.results[1]["minmax"] = dataclasses.replace(doctored, miss_ratio=1.5)
    report.failures.clear()
    _cross_check(report)
    assert any("minmax" in failure for failure in report.failures)


def test_cross_check_flags_aggregate_ordering_inversion():
    report = small_shootout()
    for by_policy in report.results:
        minmax = by_policy["minmax"]
        by_policy["minmax"] = dataclasses.replace(
            minmax,
            missed=minmax.served,
            miss_ratio=1.0,
        )
    report.failures.clear()
    _cross_check(report)
    assert any("aggregate ordering" in failure for failure in report.failures)
    assert not report.ok


def test_mean_miss_ratio_weights_by_served():
    report = small_shootout()
    served = sum(r["max"].served for r in report.results)
    missed = sum(r["max"].missed for r in report.results)
    expected = missed / served if served else 0.0
    assert report.mean_miss_ratio("max") == pytest.approx(expected)
    assert 0.0 <= report.mean_miss_ratio("max") <= 1.0
    assert ORDERING_TOLERANCE > 0


def test_cli_scenario_shootout(capsys):
    status = cli_main(
        [
            "scenario-shootout",
            "--scenarios",
            "2",
            "--policies",
            "max,minmax",
            "--scenario-seed",
            "1",
            "--jobs",
            "1",
        ]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "Scenario shootout" in output
    assert "All cross-checks passed." in output
    assert "[engine]" in output


def test_cli_list_includes_shootout(capsys):
    assert cli_main(["--list"]) == 0
    assert "scenario-shootout" in capsys.readouterr().out


def test_shootout_without_invariants_uses_plain_specs():
    report = small_shootout(invariants=False, count=2)
    assert report.ok
    # Different cache keys than the invariant-checked runs.
    assert runner.stats.misses == 4


def test_empty_report_renders():
    report = ScenarioShootoutReport(scenarios=[], policies=("max",), results=[])
    _cross_check(report)
    assert report.ok


def test_shootout_regret_columns_nonnegative():
    report = small_shootout(count=2, regret=True)
    assert report.ok, report.failures
    rendered = report.render()
    assert "regret" in rendered
    for policy in report.policies:
        assert report.regret(policy) >= 0
        assert report.regret_ratio(policy) >= -1e-9
    check_names = {check["name"] for check in report.checks}
    assert {"regret-nonnegative", "oracle-consistency"} <= check_names


def test_cross_check_flags_negative_regret():
    report = small_shootout(count=2, regret=True)
    # Doctor one cell so the "recorded" run beats the oracle's optimum.
    cell = report.oracle[0]["max"]
    report.oracle[0]["max"] = dataclasses.replace(
        cell, misses=cell.recorded_misses + 1
    )
    report.failures.clear()
    _cross_check(report)
    assert any("negative regret" in failure for failure in report.failures)


def test_report_json_schema():
    import json as jsonlib

    report = small_shootout(count=2, regret=True)
    payload = report.to_json()
    jsonlib.dumps(payload)  # JSON-safe end to end
    assert payload["schema_version"] == 1
    assert payload["kind"] == "scenario-shootout"
    assert payload["ok"] is True
    assert payload["policies"] == ["max", "minmax"]
    assert "regret" in payload["columns"]
    for row in payload["rows"]:
        assert row["regret"] >= 0
        assert row["served"] == row["completed"] + row["missed"]
    assert all(check["ok"] for check in payload["checks"])


def test_cli_scenario_shootout_regret_and_json(tmp_path, capsys):
    import json as jsonlib

    out = tmp_path / "report.json"
    status = cli_main(
        [
            "scenario-shootout",
            "--scenarios",
            "2",
            "--policies",
            "max,minmax",
            "--scenario-seed",
            "1",
            "--jobs",
            "1",
            "--regret",
            "--json",
            str(out),
        ]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "regret" in output
    assert f"[json] report written to {out}" in output
    payload = jsonlib.loads(out.read_text())
    assert payload["schema_version"] == 1
    assert {"regret-nonnegative", "oracle-consistency"} <= {
        check["name"] for check in payload["checks"]
    }


def test_cli_list_includes_oracle(capsys):
    assert cli_main(["--list"]) == 0
    assert "oracle" in capsys.readouterr().out


def test_cli_oracle_prints_schedule(capsys):
    status = cli_main(
        [
            "oracle",
            "--family",
            "bursty",
            "--index",
            "0",
            "--scenario-seed",
            "1",
            "--policy",
            "minmax",
        ]
    )
    output = capsys.readouterr().out
    assert status == 0
    assert "Oracle (" in output
    assert "Optimal schedule" in output
    assert "regret" in output
