"""Unit tests for the query manager's lifecycle machinery.

These drive a real :class:`RTDBSystem` at tiny scale and inspect the
manager directly -- admission, suspension/resume, firm aborts in every
state, and batch feedback delivery.
"""

import pytest

from repro import MinMaxPolicy, RTDBSystem, baseline
from repro.core.allocation import QueryDemand
from repro.policies.base import MemoryPolicy


class ScriptedPolicy(MemoryPolicy):
    """Allocates from a mutable script: {qid: pages}; else nothing."""

    name = "scripted"

    def __init__(self):
        self.script = {}
        self.calls = 0

    def allocate(self, demands, memory, now=0.0):
        self.calls += 1
        return {d.qid: min(self.script.get(d.qid, 0), d.max_pages) for d in demands}


def make_system(policy=None, arrival_rate=0.03, duration=900.0, seed=13):
    config = baseline(
        arrival_rate=arrival_rate, scale=0.1, duration=duration, seed=seed
    )
    return RTDBSystem(config, policy if policy is not None else MinMaxPolicy())


def test_policy_invoked_on_every_arrival_and_departure():
    policy = ScriptedPolicy()
    system = make_system(policy)
    system.run(max_completions=5)
    # At least one call per arrival (admissions impossible: script
    # empty, so departures happen via firm aborts).
    assert policy.calls >= system.source.arrivals
    assert system.query_manager.misses == system.query_manager.departures > 0


def test_scripted_admission_starts_query():
    policy = ScriptedPolicy()
    system = make_system(policy)
    admitted = []

    original_admit = system.query_manager._admit

    def spy(job, pages):
        admitted.append((job.qid, pages))
        original_admit(job, pages)

    system.query_manager._admit = spy
    policy.script = {0: 10_000}  # give query 0 whatever it wants (capped)
    system.run(max_completions=1)
    assert admitted and admitted[0][0] == 0
    assert admitted[0][1] > 0


def test_abort_while_waiting_counts_as_miss_with_zero_execution():
    policy = ScriptedPolicy()  # never admits anyone
    system = make_system(policy)
    result = system.run(max_completions=3)
    assert result.miss_ratio == 1.0
    for entry in result.departure_log:
        _t, _cls, missed, _waiting, execution, _fl = entry
        assert missed and execution == 0.0


def test_departure_listener_receives_records():
    system = make_system()
    records = []
    system.query_manager.departure_listeners.append(records.append)
    system.run(max_completions=4)
    assert len(records) >= 4
    record = records[0]
    assert record.time_constraint > 0
    assert record.max_demand >= record.min_demand > 0
    assert record.operand_io_count > 0


@pytest.mark.slow
def test_batches_delivered_every_sample_size():
    # The served // sample_size identity holds at any horizon; 1200
    # simulated seconds still closes several batches.
    system = make_system(arrival_rate=0.05, duration=1200.0)
    result = system.run()
    sample_size = system.config.pmm.sample_size
    expected = result.served // sample_size
    assert system.query_manager.batches_delivered == expected


@pytest.mark.slow
def test_mpl_monitor_tracks_admissions():
    system = make_system(arrival_rate=0.05, duration=600.0)
    system.run()
    assert system.query_manager.mpl_monitor.mean() > 0.0
    # Present >= admitted at all times, so the time averages order too.
    assert (
        system.query_manager.present_monitor.mean()
        >= system.query_manager.mpl_monitor.mean() - 1e-9
    )


def test_oversized_demand_capped_at_pool():
    system = make_system()
    # Inject a fake demand list through the policy interface to verify
    # the manager caps demands: run briefly, then inspect job records.
    system.run(max_completions=2)
    for entry in system.source.departure_log:
        assert entry is not None
    # Direct check: every submitted job had demand_max <= pool.
    # (Jobs are gone after departure; use a fresh system with a spy.)
    captured = []
    system2 = make_system()
    original_submit = system2.query_manager.submit

    def spy(job):
        original_submit(job)
        captured.append((job.demand_min, job.demand_max))

    system2.query_manager.submit = spy
    system2.run(max_completions=2)
    pool = system2.buffers.total_pages
    for demand_min, demand_max in captured:
        assert demand_min <= demand_max <= pool


def test_duplicate_qid_rejected():
    system = make_system()
    from repro.queries.base import MemoryGrant
    from repro.rtdbs.query_manager import QueryJob

    # Steal a real operator by generating one arrival manually.
    system.source._submit_query(system.config.workload.classes[0])
    job = system.query_manager.present_jobs[0]
    clone = QueryJob(
        qid=job.qid,
        class_name=job.class_name,
        operator=job.operator,
        grant=MemoryGrant(0),
        arrival=0.0,
        deadline=1.0,
        standalone=1.0,
    )
    with pytest.raises(ValueError):
        system.query_manager.submit(clone)


def test_reallocation_suspends_and_resumes():
    policy = ScriptedPolicy()
    system = make_system(policy)
    qm = system.query_manager

    # Admit query 0 generously, let it run a bit, yank its memory to
    # zero mid-flight, then restore it.
    policy.script = {0: 10_000}
    system.source._submit_query(system.config.workload.classes[0])
    qm.reallocate()
    job = qm.present_jobs[0]
    assert job.state == "running"
    system.sim.run(until=system.sim.now + 0.5)
    policy.script = {0: 0}
    qm.reallocate()
    assert job.grant.pages == 0
    fluctuations_after_suspend = job.grant.fluctuations
    assert fluctuations_after_suspend >= 1
    policy.script = {0: 10_000}
    qm.reallocate()
    assert job.grant.pages > 0
    # The query eventually completes despite the round trip.
    system.sim.run(until=system.sim.now + 60.0)
    assert job.state in ("done", "aborted")
