"""Property-based tests on the operators' resource accounting.

The key invariant behind the whole simulation: whatever memory schedule
an operator experiences, its I/O stays *conserved* -- every temp page
written is read back (or the query finishes having read each operand
page at least once), and CPU work is bounded between the one-pass
minimum and a sane multi-pass ceiling.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.base import MemoryGrant, OperatorContext
from repro.queries.hash_join import HashJoinOperator
from repro.queries.requests import READ, WRITE, AllocationWait, CPUBurst, DiskAccess
from repro.queries.sort import ExternalSortOperator
from repro.rtdbs.config import CPUCosts
from repro.rtdbs.database import Relation, TempFile


def make_context():
    return OperatorContext(
        tuples_per_page=40,
        block_size=6,
        costs=CPUCosts(),
        allocate_temp=lambda disk, pages: TempFile(disk, 10_000, pages),
        release_temp=lambda temp: None,
    )


def run_with_schedule(operator, grant, schedule):
    """Drive the operator, applying grant changes every few requests.

    ``schedule`` is a list of page counts (0 allowed); the grant cycles
    through it.  Returns the full request trace.
    """
    trace = []
    position = 0
    grant.started = True  # count fluctuations like an admitted query
    for index, request in enumerate(operator.run()):
        trace.append(request)
        if isinstance(request, AllocationWait) and grant.pages == 0:
            # Never deadlock the drain: restore some memory.
            grant.set(max(operator.min_pages, 8))
            continue
        if index % 7 == 6 and schedule:
            pages = schedule[position % len(schedule)]
            position += 1
            grant.set(pages if pages == 0 else max(pages, operator.min_pages))
    return trace


def reads(trace, cacheable=None):
    total = 0
    for request in trace:
        if isinstance(request, DiskAccess) and request.kind == READ:
            if cacheable is None or request.cacheable == cacheable:
                total += request.npages
    return total


def writes(trace):
    return sum(
        r.npages for r in trace if isinstance(r, DiskAccess) and r.kind == WRITE
    )


def cpu(trace):
    """Total instructions: stand-alone bursts plus bursts attached to
    disk accesses (the per-block batching optimisation)."""
    total = 0.0
    for request in trace:
        if isinstance(request, CPUBurst):
            total += request.instructions
        elif isinstance(request, DiskAccess):
            total += request.cpu
    return total


grant_schedules = st.lists(
    st.integers(min_value=0, max_value=200), min_size=1, max_size=8
)


@given(
    inner=st.integers(min_value=12, max_value=90),
    outer_factor=st.integers(min_value=1, max_value=6),
    schedule=grant_schedules,
)
@settings(max_examples=40, deadline=None)
def test_join_io_conservation_under_any_schedule(inner, outer_factor, schedule):
    outer = inner * outer_factor
    context = make_context()
    grant = MemoryGrant(0)
    operator = HashJoinOperator(
        context,
        grant,
        Relation(0, 0, 0, inner, 1000),
        Relation(1, 1, 1, outer, 3000),
    )
    grant.set(operator.max_pages)
    trace = run_with_schedule(operator, grant, schedule)

    # Operands are read exactly once (cacheable reads).
    assert reads(trace, cacheable=True) == inner + outer
    # Spooled pages are read back within block-rounding slack.
    spooled = writes(trace)
    temp_reads = reads(trace, cacheable=False)
    assert temp_reads >= spooled * 0.85 - 2 * context.block_size
    # Total temp traffic is bounded: nothing is written more than once
    # beyond contraction churn (each suspension/contraction cycle can
    # re-spool up to the inner relation's in-memory pages).
    fluctuation_budget = (grant.fluctuations + 2) * (inner + context.block_size)
    assert spooled <= (inner + outer) + fluctuation_budget
    # CPU at least the one-pass minimum.
    costs = context.costs
    minimum_cpu = (
        costs.initiate_query
        + costs.terminate_query
        + inner * 40 * costs.hash_insert
        + outer * 40 * costs.hash_output  # contracted probes cost at least a copy
    )
    assert cpu(trace) >= minimum_cpu * 0.9


@given(
    pages=st.integers(min_value=12, max_value=150),
    schedule=grant_schedules,
)
@settings(max_examples=40, deadline=None)
def test_sort_io_conservation_under_any_schedule(pages, schedule):
    context = make_context()
    grant = MemoryGrant(0)
    operator = ExternalSortOperator(context, grant, Relation(0, 0, 0, pages, 1000))
    grant.set(operator.max_pages)
    trace = run_with_schedule(operator, grant, schedule)

    # The operand is read exactly once.
    assert reads(trace, cacheable=True) == pages
    # Every merge input page was previously written (within rounding
    # slack from block-padded run tails).
    spooled = writes(trace)
    merge_reads = reads(trace, cacheable=False)
    assert merge_reads <= spooled + 4 * context.block_size
    # Multi-pass blowup is bounded by a generous log factor.
    assert spooled <= pages * (2 + math.ceil(math.log2(max(2, pages))))


@given(inner=st.integers(min_value=12, max_value=60))
@settings(max_examples=15, deadline=None)
def test_join_no_fluctuations_under_constant_grant(inner):
    context = make_context()
    grant = MemoryGrant(0)
    operator = HashJoinOperator(
        context,
        grant,
        Relation(0, 0, 0, inner, 1000),
        Relation(1, 1, 1, inner * 2, 3000),
    )
    grant.set(operator.max_pages)
    grant.started = True
    for _request in operator.run():
        grant.set(operator.max_pages)  # re-setting the same value
    assert grant.fluctuations == 0
