"""Unit tests for the analysis helpers and report formatting."""

import pytest

from repro.analysis.output import (
    departure_miss_series,
    miss_ratio_confidence,
    phase_average,
)
from repro.analysis.report import format_series, format_table


def log_entry(time, cls="Medium", missed=False):
    return (time, cls, missed, 0.0, 1.0, 0)


# ----------------------------------------------------------------------
# miss_ratio_confidence
# ----------------------------------------------------------------------
def test_confidence_point_estimate_matches_ratio():
    log = [log_entry(t, missed=(t % 4 == 0)) for t in range(400)]
    mean, low, high = miss_ratio_confidence(log, batch_size=50)
    assert mean == pytest.approx(0.25)
    assert low <= mean <= high


def test_confidence_degenerates_with_one_batch():
    log = [log_entry(t) for t in range(10)]
    mean, low, high = miss_ratio_confidence(log, batch_size=10)
    assert mean == low == high == 0.0


def test_confidence_filters_by_class():
    log = [log_entry(t, cls="A", missed=True) for t in range(100)] + [
        log_entry(t, cls="B", missed=False) for t in range(100)
    ]
    mean_a, _lo, _hi = miss_ratio_confidence(log, batch_size=20, class_name="A")
    mean_b, _lo, _hi = miss_ratio_confidence(log, batch_size=20, class_name="B")
    assert mean_a == 1.0
    assert mean_b == 0.0


# ----------------------------------------------------------------------
# windowed series / phase averages
# ----------------------------------------------------------------------
def test_departure_miss_series_buckets():
    log = [log_entry(5.0, missed=True), log_entry(6.0), log_entry(15.0)]
    series = departure_miss_series(log, window_seconds=10.0)
    assert series == [(5.0, 0.5), (15.0, 0.0)]


def test_departure_miss_series_validates_window():
    with pytest.raises(ValueError):
        departure_miss_series([], 0.0)


def test_phase_average_matches_buckets():
    log = [
        log_entry(1.0, missed=True),
        log_entry(2.0, missed=False),
        log_entry(11.0, missed=False),
    ]
    averages = phase_average(log, [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0)])
    assert averages == [0.5, 0.0, 0.0]


def test_phase_average_respects_class_filter():
    log = [log_entry(1.0, cls="A", missed=True), log_entry(2.0, cls="B", missed=False)]
    assert phase_average(log, [(0.0, 10.0)], class_name="A") == [1.0]


# ----------------------------------------------------------------------
# report formatting
# ----------------------------------------------------------------------
def test_format_table_aligns_columns():
    table = format_table(["name", "value"], [["alpha", 1], ["b", 22.5]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "22.500" in lines[4]


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_series_merges_on_shared_grid():
    series = {
        "minmax": [(0.04, 0.1), (0.06, 0.2)],
        "max": [(0.04, 0.3), (0.06, 0.5)],
    }
    rendered = format_series(series, "rate", "miss")
    assert "max miss" in rendered
    assert "minmax miss" in rendered
    assert "0.040" in rendered


def test_format_series_rejects_mismatched_grids():
    series = {"a": [(1, 1)], "b": [(2, 1)]}
    with pytest.raises(ValueError):
        format_series(series, "x", "y")


def test_format_series_rejects_empty():
    with pytest.raises(ValueError):
        format_series({}, "x", "y")
