"""Engine-level tests: cache keys, persistence, and parallel execution.

These pin the guarantees the experiment engine makes:

* cache keys are canonical content hashes -- stable across processes
  and ``PYTHONHASHSEED``, salted by :data:`runner.CACHE_VERSION`;
* :class:`SimulationResult` round-trips through pickle losslessly (the
  process-pool and the on-disk cache both depend on it);
* a fixed-seed grid produces bit-identical results serially and under
  process-pool fan-out;
* the persistent cache serves warm runs and never serves stale salt.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.runner import (
    ExperimentSettings,
    ResultCache,
    RunSpec,
    SetupSignatureError,
    cache_key,
    clear_cache,
    run_config,
    run_many,
)
from repro.workloads.presets import baseline


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "_jobs_override", 1)
    monkeypatch.setattr(runner, "_cache_dir_override", str(tmp_path / "cache"))
    monkeypatch.setattr(runner, "_cache_enabled_override", True)
    clear_cache()
    runner.reset_stats()
    yield
    clear_cache()


TINY = ExperimentSettings(scale=0.1, duration=200.0, seed=3)


def tiny_config(rate=0.04, seed=3):
    return baseline(arrival_rate=rate, scale=0.1, seed=seed)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def test_cache_key_stable_across_processes():
    key = cache_key(tiny_config(), "minmax", TINY)
    script = (
        "from repro.experiments.runner import ExperimentSettings, cache_key\n"
        "from repro.workloads.presets import baseline\n"
        "config = baseline(arrival_rate=0.04, scale=0.1, seed=3)\n"
        "settings = ExperimentSettings(scale=0.1, duration=200.0, seed=3)\n"
        "print(cache_key(config, 'minmax', settings))\n"
    )
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    # A different hash seed must not perturb the key.
    env["PYTHONHASHSEED"] = "424242"
    output = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )
    assert output.returncode == 0, output.stderr
    assert output.stdout.strip() == key


def test_cache_key_distinguishes_every_dimension():
    base = cache_key(tiny_config(), "minmax", TINY)
    assert cache_key(tiny_config(), "max", TINY) != base
    assert cache_key(tiny_config(rate=0.05), "minmax", TINY) != base
    assert cache_key(tiny_config(seed=4), "minmax", TINY) != base
    longer = ExperimentSettings(scale=0.1, duration=300.0, seed=3)
    assert cache_key(tiny_config(), "minmax", longer) != base
    signed = cache_key(tiny_config(), "minmax", TINY, setup_signature=("phases", 5))
    assert signed != base
    assert cache_key(tiny_config(), "minmax", TINY, setup_signature=("phases", 6)) != signed


def test_cache_key_salted_by_version(monkeypatch):
    before = cache_key(tiny_config(), "minmax", TINY)
    monkeypatch.setattr(runner, "CACHE_VERSION", runner.CACHE_VERSION + 1)
    assert cache_key(tiny_config(), "minmax", TINY) != before


def test_cache_key_rejects_unhashable_material():
    with pytest.raises(TypeError):
        cache_key(tiny_config(), "minmax", TINY, setup_signature=(lambda: None,))


# ----------------------------------------------------------------------
# Pickle round-trip
# ----------------------------------------------------------------------
def test_simulation_result_pickle_roundtrip():
    result = run_config(tiny_config(), "minmax", TINY)
    clone = pickle.loads(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    assert clone == result  # dataclass equality, every field
    assert clone.equals_exactly(result)
    assert clone.per_class.keys() == result.per_class.keys()
    assert clone.departure_log == result.departure_log


# ----------------------------------------------------------------------
# Serial vs parallel
# ----------------------------------------------------------------------
def test_serial_and_parallel_results_identical():
    specs = [
        RunSpec(tiny_config(rate=rate), policy, TINY)
        for policy in ("max", "minmax")
        for rate in (0.04, 0.05)
    ]
    serial = run_many(specs, jobs=1, cache=False)
    parallel = run_many(specs, jobs=2, cache=False)
    assert len(serial) == len(parallel) == len(specs)
    for left, right in zip(serial, parallel):
        assert left.equals_exactly(right)
        assert (left.arrivals, left.served, left.missed) == (
            right.arrivals,
            right.served,
            right.missed,
        )


def test_run_many_dedupes_identical_specs_within_a_batch():
    spec = RunSpec(tiny_config(), "minmax", TINY)
    other = RunSpec(tiny_config(rate=0.05), "minmax", TINY)
    results = run_many([spec, other, spec])
    assert runner.stats.misses == 2  # the duplicate never executed
    assert results[0] is results[2]
    assert not results[1].equals_exactly(results[0])


def test_run_many_preserves_spec_order_with_mixed_hits():
    first = RunSpec(tiny_config(rate=0.04), "minmax", TINY)
    second = RunSpec(tiny_config(rate=0.05), "minmax", TINY)
    warmed = run_config(tiny_config(rate=0.04), "minmax", TINY)
    results = run_many([first, second])
    assert results[0] is warmed  # served from the memo, in position
    assert results[1].policy == warmed.policy  # same policy, different rate...
    assert not results[1].equals_exactly(results[0])  # ...distinct run


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------
def test_disk_cache_survives_memo_clear():
    result = run_config(tiny_config(), "minmax", TINY)
    assert runner.stats.misses == 1 and runner.stats.stores == 1
    clear_cache()  # drop the in-process memo, keep the disk
    warm = run_config(tiny_config(), "minmax", TINY)
    assert runner.stats.disk_hits == 1
    assert warm is not result  # different object...
    assert warm.equals_exactly(result)  # ...same experiment, exactly


def test_cache_version_bump_invalidates_disk_entries(monkeypatch, tmp_path):
    cache = ResultCache(tmp_path / "salted")
    key = cache_key(tiny_config(), "minmax", TINY)
    result = run_config(tiny_config(), "minmax", TINY)
    cache.put(key, result)
    assert cache.get(key).equals_exactly(result)
    monkeypatch.setattr(runner, "CACHE_VERSION", runner.CACHE_VERSION + 1)
    bumped = ResultCache(tmp_path / "salted")
    new_key = cache_key(tiny_config(), "minmax", TINY)
    assert bumped.get(new_key) is None  # old entries unreachable
    assert bumped.directory != cache.directory  # versioned directory


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "corrupt")
    key = cache_key(tiny_config(), "minmax", TINY)
    cache.directory.mkdir(parents=True)
    cache.path_for(key).write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()  # dropped, not retried forever


def test_cache_disabled_bypasses_disk(monkeypatch):
    monkeypatch.setattr(runner, "_cache_enabled_override", False)
    result = run_config(tiny_config(), "minmax", TINY)
    assert len(ResultCache(runner.cache_dir())) == 0
    again = run_config(tiny_config(), "minmax", TINY)
    assert again is result  # the in-process memo still applies


def test_spec_key_requires_setup_signature():
    spec = RunSpec(tiny_config(), "minmax", TINY, setup=lambda system: None)
    with pytest.raises(SetupSignatureError):
        runner.spec_key(spec)
