"""Unit tests for the disk model: ED queueing, timing, caches."""

import pytest

from repro.rtdbs.config import ResourceParams
from repro.rtdbs.disk import Disk, PrefetchCache, READ, WRITE
from repro.sim.rng import Streams
from repro.sim.simulator import Simulator


def make_disk(stochastic=False, **overrides):
    resources = ResourceParams(stochastic_rotation=stochastic, **overrides)
    sim = Simulator()
    disk = Disk(sim, 0, resources, Streams(3).stream("rot"))
    return sim, disk, resources


def finish_times(sim, requests):
    times = {}
    for name, request in requests.items():
        request.callbacks.append(lambda evt, n=name: times.setdefault(n, sim.now))
    sim.run()
    return times


# ----------------------------------------------------------------------
# timing arithmetic
# ----------------------------------------------------------------------
def test_first_access_pays_seek_rotation_transfer():
    sim, disk, resources = make_disk()
    start_cylinder = resources.num_cylinders // 2
    target_page = (start_cylinder + 100) * resources.cylinder_size
    request = disk.submit(READ, target_page, 6, priority=1.0)
    times = finish_times(sim, {"req": request})
    expected = (
        resources.seek_time(100)
        + resources.rotation_s / 2.0
        + 6 * resources.transfer_s_per_page
    )
    assert times["req"] == pytest.approx(expected)


def test_sequential_continuation_pays_transfer_only():
    sim, disk, resources = make_disk()
    page = (resources.num_cylinders // 2) * resources.cylinder_size
    first = disk.submit(READ, page, 6, priority=1.0)
    second = disk.submit(READ, page + 6, 6, priority=1.0)
    times = finish_times(sim, {"first": first, "second": second})
    gap = times["second"] - times["first"]
    assert gap == pytest.approx(6 * resources.transfer_s_per_page)
    assert disk.sequential_continuations == 1


def test_interleaved_streams_both_keep_continuation():
    sim, disk, resources = make_disk()
    page_a = 100 * resources.cylinder_size
    page_b = 900 * resources.cylinder_size
    disk.submit(READ, page_a, 6, priority=1.0)
    disk.submit(READ, page_b, 6, priority=1.0)
    disk.submit(READ, page_a + 6, 6, priority=1.0)
    disk.submit(READ, page_b + 6, 6, priority=1.0)
    sim.run()
    assert disk.sequential_continuations == 2


def test_ed_priority_orders_service():
    sim, disk, resources = make_disk()
    base = 700 * resources.cylinder_size
    # Fill the disk with one request, then queue two more in reverse
    # deadline order: the earlier deadline must be served first.
    blocker = disk.submit(READ, base, 6, priority=0.0)
    late = disk.submit(READ, base + 600, 6, priority=9.0)
    urgent = disk.submit(READ, base + 1200, 6, priority=1.0)
    times = finish_times(sim, {"blocker": blocker, "late": late, "urgent": urgent})
    assert times["urgent"] < times["late"]


def test_elevator_breaks_priority_ties():
    sim, disk, resources = make_disk()
    head_cylinder = resources.num_cylinders // 2
    blocker = disk.submit(READ, head_cylinder * resources.cylinder_size, 1, priority=0.0)
    # Two equal-priority requests: one 10 cylinders inward (sweep
    # direction), one 5 cylinders outward.  The elevator picks the one
    # ahead in the current (inward) direction despite being farther.
    inward = disk.submit(READ, (head_cylinder + 10) * resources.cylinder_size, 1, 5.0)
    outward = disk.submit(READ, (head_cylinder - 5) * resources.cylinder_size, 1, 5.0)
    times = finish_times(sim, {"blocker": blocker, "in": inward, "out": outward})
    assert times["in"] < times["out"]


def test_prefetch_cache_serves_reread_instantly():
    sim, disk, resources = make_disk()
    page = 100 * resources.cylinder_size
    disk.submit(READ, page, 6, priority=1.0)
    sim.run()
    again = disk.submit(READ, page, 6, priority=1.0)
    assert again.triggered  # served from cache without queueing
    assert disk.cache.hits == 1


def test_cache_capacity_bounded():
    cache = PrefetchCache(8)
    cache.insert(0, 8)
    cache.insert(100, 8)
    assert len(cache) == 8
    assert not cache.contains_all(0, 8)
    assert cache.contains_all(100, 8)


def test_write_then_read_hits_cache():
    sim, disk, resources = make_disk()
    page = 100 * resources.cylinder_size
    disk.submit(WRITE, page, 6, priority=1.0)
    sim.run()
    read = disk.submit(READ, page, 6, priority=1.0)
    assert read.triggered


def test_cancel_queued_request_never_completes():
    sim, disk, resources = make_disk()
    base = 700 * resources.cylinder_size
    disk.submit(READ, base, 6, priority=0.0)
    doomed = disk.submit(READ, base + 60, 6, priority=5.0)
    fired = []
    doomed.callbacks.append(lambda evt: fired.append(1))
    disk.cancel(doomed)
    sim.run()
    assert fired == []


def test_cancel_queued_request_is_dropped_before_service():
    sim, disk, resources = make_disk()
    base = 700 * resources.cylinder_size
    disk.submit(READ, base, 6, priority=0.0)
    doomed = disk.submit(READ, base + 600, 6, priority=5.0)
    assert disk.queue_length == 1
    disk.cancel(doomed)
    # Dropped immediately -- not lazily at the next dispatch.
    assert disk.queue_length == 0
    sim.run()
    # The arm never served it: only the first access is counted, and the
    # cancelled request's pages were never transferred into the cache.
    assert disk.accesses == 1
    assert not disk.cache.contains_all(base + 600, 6)


def test_cancel_in_service_request_is_non_preemptive():
    """Regression: cancelling the access being served must not deliver
    its completion, but the arm still finishes -- head, stream tails,
    and prefetch cache all advance exactly as for an uncancelled access,
    and the next request waits the full service time."""
    sim, disk, resources = make_disk()
    base_cylinder = 700
    base = base_cylinder * resources.cylinder_size
    victim = disk.submit(READ, base, 6, priority=1.0)
    queued = disk.submit(READ, base + 600, 6, priority=2.0)
    fired = []
    victim.callbacks.append(lambda evt: fired.append("victim"))
    queued.callbacks.append(lambda evt: fired.append("queued"))
    victim_service = disk.service_times.total  # duration already charged
    disk.cancel(victim)
    sim.run()
    # Delivered nowhere...
    assert "victim" not in fired
    # ...but the access physically completed: head moved to its last
    # cylinder before the queued access was served from there.
    assert fired == ["queued"]
    assert disk.accesses == 2
    assert disk.cache.contains_all(base, 6)  # pages still installed
    end_cylinder = (base + 600 + 5) // resources.cylinder_size
    assert disk.head == end_cylinder
    # The queued request could only start after the full service time
    # of the cancelled access (non-preemptive arm).
    assert disk.service_times.count == 2
    assert disk.service_times.total >= victim_service


def test_out_of_range_access_rejected():
    sim, disk, resources = make_disk()
    with pytest.raises(ValueError):
        disk.submit(READ, resources.pages_per_disk - 2, 6, priority=1.0)
    with pytest.raises(ValueError):
        disk.submit(READ, -1, 1, priority=1.0)
    with pytest.raises(ValueError):
        disk.submit(READ, 0, 0, priority=1.0)
    with pytest.raises(ValueError):
        disk.submit("flush", 0, 1, priority=1.0)


def test_utilization_reflects_busy_time():
    sim, disk, resources = make_disk()
    page = 100 * resources.cylinder_size
    disk.submit(READ, page, 6, priority=1.0)
    sim.run()
    busy_until = sim.now
    sim.run(until=busy_until * 2)
    assert disk.utilization() == pytest.approx(0.5, rel=1e-6)


def test_stochastic_rotation_varies_but_bounded():
    sim, disk, resources = make_disk(stochastic=True)
    base = 700 * resources.cylinder_size
    durations = []
    for index in range(20):
        # Far-apart single-page reads: never sequential continuations.
        request = disk.submit(READ, base + index * 3000, 1, priority=float(index))
        request.callbacks.append(lambda evt, t0=sim.now: durations.append(sim.now))
        sim.run()
    gaps = [b - a for a, b in zip(durations, durations[1:])]
    assert min(gaps) >= 1 * resources.transfer_s_per_page
    assert len(set(round(g, 6) for g in gaps)) > 3  # rotation randomness
