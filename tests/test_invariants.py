"""The InvariantChecker: hooks fire, honest runs pass, broken policies fail."""

import pytest

from repro import RTDBSystem, baseline
from repro.core.allocation import QueryDemand
from repro.policies.base import MemoryPolicy
from repro.rtdbs.invariants import (
    INVARIANTS_SIGNATURE,
    InvariantChecker,
    InvariantViolation,
    attach_invariants,
)


def tiny_config(**overrides):
    defaults = dict(arrival_rate=0.3, scale=0.05, seed=3, duration=80.0)
    defaults.update(overrides)
    return baseline(**defaults)


# ----------------------------------------------------------------------
# honest runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["max", "minmax", "minmax-2", "proportional", "pmm"])
def test_every_policy_passes_on_the_baseline(policy):
    system = RTDBSystem(tiny_config(), policy, invariants=True)
    result = system.run()
    checker = system.invariants
    assert isinstance(checker, InvariantChecker)
    # The hooks actually fired, at every seam, many times.
    assert checker.checks["allocation"] > 10
    assert checker.checks["buffers"] > 10
    assert checker.checks["population"] == result.served
    assert checker.checks["final"] == 1


def test_checker_is_off_by_default():
    system = RTDBSystem(tiny_config(), "minmax")
    assert system.invariants is None
    assert system.query_manager.invariants is None
    assert system.buffers.invariants is None


def test_attach_invariants_hook_and_signature():
    system = RTDBSystem(tiny_config(), "minmax")
    checker = attach_invariants(system)
    assert system.invariants is checker
    assert INVARIANTS_SIGNATURE == ("invariants", 1)
    system.run()
    assert checker.checks["final"] == 1


def test_checker_reuse_resets_state_on_reattach():
    """Regression: re-attaching a checker must not carry stale state.

    Attaching one checker to a second system used to raise; now it
    detaches from the first system, zeroes every counter, and forgets
    recorded failures -- so counts after the second run reflect that
    run alone and a stale failure can never poison a fresh run's
    ``check_final``.
    """
    first = RTDBSystem(tiny_config(), "minmax", invariants=True)
    checker = first.invariants
    first.run()
    first_counts = dict(checker.checks)
    assert first_counts["final"] == 1
    checker.failures.append("stale failure from a previous epoch")

    second = RTDBSystem(tiny_config(seed=5), "minmax")
    assert checker.attach(second) is checker
    # The first system is fully unhooked...
    assert first.invariants is None
    assert first.query_manager.invariants is None
    assert first.query_manager.broker.invariants is None
    assert first.buffers.invariants is None
    # ...and the counters restart from zero (no stale failures either).
    assert checker.checks == {
        "allocation": 0,
        "buffers": 0,
        "population": 0,
        "final": 0,
    }
    assert checker.failures == []
    result = second.run()
    assert checker.checks["final"] == 1
    assert checker.checks["population"] == result.served
    assert checker.checks["allocation"] > 0


def test_checker_reuse_on_standalone_broker():
    """A checker moves from a system to a broker (and back) cleanly."""
    from repro.core.broker import MemoryBroker
    from repro.policies import make_policy

    system = RTDBSystem(tiny_config(), "minmax", invariants=True)
    checker = system.invariants
    system.run()
    assert checker.checks["allocation"] > 0

    broker = MemoryBroker(make_policy("minmax"), total_pages=64, sample_size=10)
    checker.attach_broker(broker)
    assert system.invariants is None
    assert broker.invariants is checker
    assert checker.checks["allocation"] == 0
    broker.register(1, "C0", priority=10.0, min_pages=4, max_pages=16)
    broker.reallocate(now=0.0)
    assert checker.checks["allocation"] == 1


def test_disk_conservation_counters():
    system = RTDBSystem(tiny_config(), "minmax", invariants=True)
    system.run()
    total_submitted = sum(disk.submitted for disk in system.disks)
    assert total_submitted > 0
    for disk in system.disks:
        live = sum(1 for entry in disk._queue if not entry[2].cancelled)
        assert disk.submitted == (
            disk.cache.hits + disk.accesses + disk.cancelled_queued + live
        )


# ----------------------------------------------------------------------
# broken policies are caught
# ----------------------------------------------------------------------
class _BrokenPolicy(MemoryPolicy):
    """Delegates to MinMax, then corrupts the vector in a chosen way."""

    name = "Broken"

    def __init__(self, corruption: str):
        self.corruption = corruption

    def allocate(self, demands, memory, now=0.0):
        from repro.core.allocation import allocate_minmax

        allocation = allocate_minmax(demands, memory)
        granted = [qid for qid, pages in allocation.items() if pages > 0]
        if not granted:
            return allocation
        victim = granted[0]
        envelope = {demand.qid: demand for demand in demands}[victim]
        if self.corruption == "below_min" and envelope.min_pages > 1:
            allocation[victim] = envelope.min_pages - 1
        elif self.corruption == "negative":
            allocation[victim] = -1
        elif self.corruption == "oversubscribe":
            allocation[victim] = memory + envelope.max_pages
        elif self.corruption == "phantom":
            allocation[max(allocation) + 1000] = 1
        return allocation


@pytest.mark.parametrize(
    "corruption", ["below_min", "negative", "oversubscribe", "phantom"]
)
def test_corrupted_allocations_raise(corruption):
    system = RTDBSystem(tiny_config(), _BrokenPolicy(corruption), invariants=True)
    with pytest.raises(InvariantViolation):
        system.run()


class _OverMPLPolicy(MemoryPolicy):
    """Claims an MPL limit of 1 but admits without one."""

    name = "OverMPL"
    target_mpl = 1

    def allocate(self, demands, memory, now=0.0):
        from repro.core.allocation import allocate_minmax

        return allocate_minmax(demands, memory)


def test_mpl_limit_violation_raises():
    # High enough load that >1 query is eventually admitted.
    system = RTDBSystem(
        tiny_config(arrival_rate=0.6, duration=200.0), _OverMPLPolicy(), invariants=True
    )
    with pytest.raises(InvariantViolation):
        system.run()


def test_violation_message_carries_context():
    system = RTDBSystem(tiny_config(), _BrokenPolicy("negative"), invariants=True)
    with pytest.raises(InvariantViolation) as excinfo:
        system.run()
    message = str(excinfo.value)
    assert "allocation" in message
    assert "policy=Broken" in message
    assert "t=" in message


# ----------------------------------------------------------------------
# the result law used by the shootout cross-checks
# ----------------------------------------------------------------------
def test_check_result_flags_inconsistent_counts():
    result = RTDBSystem(tiny_config(), "minmax").run()
    checker = InvariantChecker()
    checker.check_result(result)  # a real result passes
    import dataclasses

    broken = dataclasses.replace(result, missed=result.missed + 1)
    with pytest.raises(InvariantViolation):
        checker.check_result(broken)
