"""The fuzz core of the test pyramid: generated scenarios under invariants.

Every scenario runs with the :class:`InvariantChecker` attached; any
accounting inconsistency -- memory conservation, policy contracts,
population counts, disk-queue conservation, result sanity -- raises
:class:`InvariantViolation` and fails the test with the scenario's
coordinates in the test id (``family/index``), reproducible via::

    PYTHONPATH=src python scripts/scenario_fuzz.py \\
        --seed 0 --family <F> --index <I> --policy <P>

The fast sweep covers N=200 scenarios (40 per family) at fast scale,
rotating through all seven policies so every policy faces every family.
The ``slow``-marked sweep runs a smaller matrix exhaustively: every
scenario x every policy.
"""

import pytest

from repro.rtdbs.system import RTDBSystem
from repro.scenarios import FAMILIES, ScenarioGenerator

#: Generator seed of the checked-in sweep (the CI fuzz job rotates its
#: own seed; this one keeps tier-1 deterministic).
FUZZ_SEED = 0

#: All policies under test; the fast sweep rotates through them.
POLICIES = ("max", "minmax", "minmax-2", "minmax-6", "proportional", "pmm", "fairpmm")

#: The fast sweep's size -- the ISSUE's floor is 200 generated scenarios.
FUZZ_COUNT = 200

_GENERATOR = ScenarioGenerator(seed=FUZZ_SEED)
_SCENARIOS = _GENERATOR.batch(FUZZ_COUNT)


def _run_checked(scenario, policy):
    system = RTDBSystem(scenario.config, policy, invariants=True)
    result = system.run()
    checker = system.invariants
    assert checker.failures == []
    assert checker.checks["final"] == 1
    assert checker.checks["allocation"] >= result.served
    return result


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "scenario, policy",
    [
        pytest.param(
            scenario,
            POLICIES[i % len(POLICIES)],
            id=f"{scenario.family}-{scenario.index}-{POLICIES[i % len(POLICIES)]}",
        )
        for i, scenario in enumerate(_SCENARIOS)
    ],
)
def test_invariants_hold_on_generated_scenarios(scenario, policy):
    result = _run_checked(scenario, policy)
    # The scenario actually exercised the system.
    assert result.arrivals > 0
    assert 0.0 <= result.miss_ratio <= 1.0


@pytest.mark.fuzz
def test_fast_sweep_covers_every_family_and_policy():
    families = {s.family for s in _SCENARIOS}
    assert families == set(FAMILIES)
    pairs = {
        (s.family, POLICIES[i % len(POLICIES)]) for i, s in enumerate(_SCENARIOS)
    }
    assert len(pairs) == len(FAMILIES) * len(POLICIES), (
        "the rotation must pair every family with every policy"
    )


@pytest.mark.fuzz
@pytest.mark.slow
@pytest.mark.parametrize("policy", POLICIES)
def test_full_matrix_invariants(policy):
    """Exhaustive (scenario x policy) sweep on a smaller matrix."""
    for scenario in _GENERATOR.batch(15):
        _run_checked(scenario, policy)
