"""Unit tests for the memory-adaptive external sort operator."""

import pytest

from repro.queries.base import MemoryGrant, OperatorContext
from repro.queries.requests import READ, WRITE, AllocationWait, CPUBurst, DiskAccess
from repro.queries.sort import ExternalSortOperator
from repro.rtdbs.config import CPUCosts
from repro.rtdbs.database import Relation, TempFile


class FakeTempAllocator:
    def __init__(self):
        self.allocated = []
        self.released = []

    def allocate(self, disk, pages):
        temp = TempFile(disk, 20_000, pages)
        self.allocated.append(temp)
        return temp

    def release(self, temp):
        self.released.append(temp)


def make_sort(pages=120, grant_pages=None, tuples_per_page=40):
    allocator = FakeTempAllocator()
    context = OperatorContext(
        tuples_per_page=tuples_per_page,
        block_size=6,
        costs=CPUCosts(),
        allocate_temp=allocator.allocate,
        release_temp=allocator.release,
    )
    relation = Relation(0, 0, 0, pages, 1000)
    grant = MemoryGrant(0)
    operator = ExternalSortOperator(context, grant, relation)
    grant.set(operator.max_pages if grant_pages is None else grant_pages)
    return operator, grant, allocator


def drain(operator):
    return list(operator.run())


def io_pages(trace, kind):
    return sum(r.npages for r in trace if isinstance(r, DiskAccess) and r.kind == kind)


# ----------------------------------------------------------------------
# demand envelope
# ----------------------------------------------------------------------
def test_max_demand_is_relation_size():
    operator, _grant, _alloc = make_sort(pages=120)
    assert operator.max_pages == 120  # "the size of its operand relation"


def test_min_demand_is_stream_friendly_two_pass():
    operator, _grant, _alloc = make_sort(pages=120)
    # Advertised minimum: max(sqrt(R)+1, R/10+2) -- a two-pass
    # workspace whose merge stays within the disk's stream capacity.
    # The absolute floor capability remains 3 pages.
    assert operator.min_pages == 14
    assert operator.MIN_PAGES == 3


# ----------------------------------------------------------------------
# in-memory sort at maximum allocation
# ----------------------------------------------------------------------
def test_max_memory_sort_has_no_temp_io():
    operator, _grant, _alloc = make_sort()
    trace = drain(operator)
    assert io_pages(trace, WRITE) == 0
    assert io_pages(trace, READ) == 120
    assert operator.merge_passes == 0


def test_max_memory_sort_cpu_is_nlogn():
    operator, _grant, _alloc = make_sort(pages=120, tuples_per_page=40)
    trace = drain(operator)
    cpu = sum(r.instructions for r in trace if isinstance(r, CPUBurst))
    cpu += sum(r.cpu for r in trace if isinstance(r, DiskAccess))
    tuples = 120 * 40
    costs = CPUCosts()
    lower = tuples * costs.sort_copy + costs.initiate_query + costs.terminate_query
    assert cpu > lower  # includes log-depth comparisons
    assert cpu < lower + tuples * 20 * costs.key_compare  # sane depth bound


# ----------------------------------------------------------------------
# external sort at small allocations
# ----------------------------------------------------------------------
def test_small_memory_sort_writes_runs_and_merges():
    operator, _grant, _alloc = make_sort(pages=120, grant_pages=10)
    trace = drain(operator)
    # Run formation writes ~everything once; merging may repeat.
    assert io_pages(trace, WRITE) >= 100
    assert operator.merge_passes >= 1


def test_merge_reads_are_single_pages():
    operator, _grant, _alloc = make_sort(pages=120, grant_pages=10)
    trace = drain(operator)
    merge_reads = [
        r
        for r in trace
        if isinstance(r, DiskAccess) and r.kind == READ and not r.sequential
    ]
    assert merge_reads, "expected page-at-a-time merge reads"
    assert all(r.npages == 1 for r in merge_reads)


def test_absolute_floor_three_pages_still_completes():
    operator, _grant, _alloc = make_sort(pages=60, grant_pages=3)
    trace = drain(operator)
    # Binary merges: multiple passes expected but it must terminate.
    assert operator.merge_passes >= 2
    assert io_pages(trace, WRITE) >= 60


def test_more_memory_means_fewer_merge_passes():
    few, _g1, _a1 = make_sort(pages=240, grant_pages=4)
    drain(few)
    many, _g2, _a2 = make_sort(pages=240, grant_pages=40)
    drain(many)
    assert many.merge_passes <= few.merge_passes


def test_run_lengths_about_twice_workspace():
    operator, _grant, _alloc = make_sort(pages=240, grant_pages=12)
    lengths = []
    for request in operator.run():
        if operator.runs:
            lengths = [run.pages for run in operator.runs]
        if isinstance(request, DiskAccess) and not request.sequential:
            break  # merge phase started: formation runs were captured
    assert lengths, "expected runs to exist before merging"
    # Replacement selection: expected length 2w (the tail run may be
    # shorter, block rounding may pad slightly).
    assert max(lengths) <= 2 * 12 + 6
    assert max(lengths) >= 12


def test_suspension_mid_formation_flushes_and_waits():
    operator, grant, _alloc = make_sort(pages=120, grant_pages=10)
    steps = operator.run()
    for _ in range(8):
        next(steps)
    grant.set(0)
    saw_wait = False
    for request in steps:
        if isinstance(request, AllocationWait):
            saw_wait = True
            grant.set(10)
        elif saw_wait:
            break
    assert saw_wait


def test_shrink_mid_merge_splits_step():
    operator, grant, _alloc = make_sort(pages=240, grant_pages=30)
    steps = operator.run()
    in_merge = False
    for request in steps:
        if isinstance(request, DiskAccess) and not request.sequential:
            in_merge = True
            break
    assert in_merge
    grant.set(3)  # fan-in collapses below the step's -> it must split
    remaining = list(steps)
    assert remaining  # it still completes
    assert operator.merge_passes >= 2


def test_sort_releases_temp():
    operator, _grant, allocator = make_sort(pages=120, grant_pages=10)
    drain(operator)
    operator.release_resources()
    assert len(allocator.released) == len(allocator.allocated)


def test_empty_relation_rejected():
    allocator = FakeTempAllocator()
    context = OperatorContext(
        tuples_per_page=40,
        block_size=6,
        costs=CPUCosts(),
        allocate_temp=allocator.allocate,
        release_temp=allocator.release,
    )
    with pytest.raises(ValueError):
        ExternalSortOperator(context, MemoryGrant(3), Relation(0, 0, 0, 0, 0))
