"""Performance-regression smoke tests for the simulation hot path.

Two guards keep future PRs from silently re-bloating the kernel:

* an **event-count ceiling** on a fixed-seed baseline run -- the count
  is fully deterministic, so any regression that adds per-block events
  (extra Timeouts, double-step completions, churn in the resource
  pipeline) trips it immediately regardless of machine speed;
* an **event-throughput floor** -- deliberately conservative (the
  optimized kernel clears it by an order of magnitude on a developer
  machine) so it only fires on gross wall-clock regressions, not on CI
  jitter.
"""

import time

import pytest

from repro import RTDBSystem, baseline


#: Deterministic event count of the reference run below, measured after
#: the PR-1 hot-path pass (28 080 events).  The ceiling allows a small
#: allowance for intentional model additions; grow it consciously, not
#: accidentally.
EVENT_COUNT_CEILING = 31_000

#: Minimum events processed per wall-clock second.  The optimized
#: kernel sustains >100k events/s on a laptop; the seed kernel managed
#: ~40k.  A floor of 12k only trips on order-of-magnitude regressions
#: or a return to the pre-optimization event pipeline on slow CI.
THROUGHPUT_FLOOR = 12_000


def reference_run():
    config = baseline(arrival_rate=0.02, scale=0.1, duration=400.0, seed=3)
    system = RTDBSystem(config, "minmax")
    start = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - start
    return system, result, elapsed


@pytest.mark.slow
def test_fixed_seed_event_count_does_not_grow():
    system, result, _elapsed = reference_run()
    events = system.sim.events_processed
    assert events > 0
    assert events <= EVENT_COUNT_CEILING, (
        f"hot path re-bloated: {events} events for the reference run "
        f"(ceiling {EVENT_COUNT_CEILING}); did a resource completion "
        f"grow an extra kernel step?"
    )
    # The run itself must still be the same experiment.
    assert result.served > 0
    assert result.arrivals == 92  # deterministic for seed 3


@pytest.mark.slow
def test_event_throughput_floor():
    system, _result, elapsed = reference_run()
    throughput = system.sim.events_processed / max(elapsed, 1e-9)
    assert throughput >= THROUGHPUT_FLOOR, (
        f"kernel throughput {throughput:.0f} events/s fell below the "
        f"{THROUGHPUT_FLOOR} events/s floor (took {elapsed:.2f}s)"
    )


def test_events_processed_counter_counts_each_step():
    """The counter the guards rely on ticks once per processed entry."""
    from repro.sim.simulator import Simulator

    sim = Simulator()
    fired = []
    for delay in (0.0, 1.0, 2.0):
        sim.timeout(delay)
    sim.call_soon(lambda _arg: fired.append("soon"))
    sim.call_later(1.5, lambda _arg: fired.append("later"))
    sim.run()
    assert fired == ["soon", "later"]
    assert sim.events_processed == 5
