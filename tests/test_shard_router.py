"""The sharded serve layer: config slicing, the consistent-hash ring,
router conservation over real TCP, rebalancer migration under forced
skew, and drain-through-router semantics."""

import asyncio
import json

import pytest

from repro.scenarios import ScenarioGenerator
from repro.serve.gateway import LiveGateway
from repro.serve.router import HashRing, ShardRouter
from repro.serve.server import LiveServer
from repro.serve.shard import shard_config, split_evenly
from repro.serve.shootout import find_multitenant_scenario


def two_tenant_config():
    return find_multitenant_scenario(ScenarioGenerator(0), 2).config


# ----------------------------------------------------------------------
# resource slicing
# ----------------------------------------------------------------------
def test_split_evenly_conserves_with_remainder_low():
    assert split_evenly(10, 3) == [4, 3, 3]
    assert split_evenly(4, 2) == [2, 2]
    assert split_evenly(7, 7) == [1] * 7
    assert sum(split_evenly(154, 3)) == 154
    with pytest.raises(ValueError):
        split_evenly(5, 0)


def test_shard_config_identity_at_one():
    config = two_tenant_config()
    assert shard_config(config, 0, 1) is config  # byte-identical path


def test_shard_config_slices_conserve_resources():
    config = two_tenant_config()
    shards = 2
    slices = [shard_config(config, i, shards) for i in range(shards)]
    assert (
        sum(s.resources.num_disks for s in slices)
        == config.resources.num_disks
    )
    assert (
        sum(s.resources.memory_pages for s in slices)
        == config.resources.memory_pages
    )
    for sliced in slices:
        sliced.validate()  # every shard is a runnable config
        # The workload definition stays global: any shard serves any
        # tenant, prices deadlines with the same classes.
        assert sliced.workload == config.workload
        assert sliced.seed == config.seed


def test_shard_config_rejects_bad_splits():
    config = two_tenant_config()
    with pytest.raises(ValueError):
        shard_config(config, 2, 2)  # id out of range
    with pytest.raises(ValueError):
        shard_config(config, -1, 2)
    with pytest.raises(ValueError):
        shard_config(config, 0, 0)
    too_many = config.resources.num_disks + 1
    with pytest.raises(ValueError, match="disk"):
        shard_config(config, 0, too_many)


# ----------------------------------------------------------------------
# placement determinism
# ----------------------------------------------------------------------
def test_hash_ring_deterministic_in_seed():
    tenants = [f"tenant{i}" for i in range(100)]
    first = HashRing(4, seed=7)
    second = HashRing(4, seed=7)
    placements = [first.place(t) for t in tenants]
    assert placements == [second.place(t) for t in tenants]
    # The ring spreads tenants, it does not degenerate to one shard.
    assert len(set(placements)) > 1
    # A different seed is a different ring.
    other = HashRing(4, seed=8)
    assert placements != [other.place(t) for t in tenants]


def test_hash_ring_rejects_empty():
    with pytest.raises(ValueError):
        HashRing(0)


# ----------------------------------------------------------------------
# the routed farm, in process over real TCP
# ----------------------------------------------------------------------
async def _start_farm(
    policy="pmm", time_scale=0.01, shards=2, **router_kwargs
):
    """N in-process shard servers on shard_config slices + the router."""
    config = two_tenant_config()
    servers, endpoints = [], []
    for shard_id in range(shards):
        gateway = LiveGateway(
            shard_config(config, shard_id, shards),
            policy,
            time_scale=time_scale,
        )
        server = LiveServer(gateway, shard=(shard_id, shards))
        host, port = await server.start(port=0)
        servers.append(server)
        endpoints.append((host, port))
    router = ShardRouter(endpoints, ring_seed=config.seed, **router_kwargs)
    address = await router.start()
    return config, servers, router, address


async def _stop_farm(servers, router):
    await router.close()
    for server in servers:
        await server.close()


async def _request(writer, reader, payload):
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_router_conserves_across_two_shards_with_concurrent_tenants():
    async def scenario():
        _, servers, router, (host, port) = await _start_farm(
            rebalance_interval=0.0  # placement fixed: pure ring
        )
        try:

            async def tenant_client(tenant, count):
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    hello = await _request(
                        writer, reader, {"op": "hello", "tenant": tenant}
                    )
                    responses = []
                    for index in range(count):
                        response = await _request(
                            writer,
                            reader,
                            {
                                "op": "submit",
                                "type": "sort",
                                "pages": 8,
                                "slack": 50.0,
                                "tag": f"{tenant}-{index}",
                            },
                        )
                        responses.append(response)
                    return hello, responses
                finally:
                    writer.close()

            results = await asyncio.gather(
                tenant_client("tenant0", 3), tenant_client("tenant1", 3)
            )
            stats = await router.stats()
            return results, stats
        finally:
            await _stop_farm(servers, router)

    results, stats = asyncio.run(scenario())
    for hello, responses in results:
        assert hello["shard"] in (0, 1)
        for index, response in enumerate(responses):
            assert "error" not in response, response
            # Tag correlation and shard attribution on every response.
            assert response["tag"].endswith(str(index))
            assert response["shard"] == hello["shard"]
    conservation = stats["conservation"]
    assert conservation["ok"], conservation
    assert conservation["complete"], conservation
    assert stats["arrivals"] == 6
    assert stats["per_tenant"] == {"tenant0": 3, "tenant1": 3}
    assert sum(stats["routed"]) == 6
    # Router counters agree with what the shards themselves report.
    assert (
        sum(s["arrivals"] for s in stats["shards"]) == stats["arrivals"]
    )
    for shard_stats in stats["shards"]:
        assert shard_stats["served"] + shard_stats["shed"] == shard_stats[
            "arrivals"
        ]


def test_rebalancer_migrates_off_forced_skew():
    """Both tenants packed on shard 0 (worst-case cold start): the
    rebalancer must read the skew out of the shards' batch feedback
    and migrate one tenant; new submissions then route to shard 1."""

    async def scenario():
        _, servers, router, (host, port) = await _start_farm(
            rebalance_interval=0.05,
            min_skew_arrivals=2,
            placement={"tenant0": 0, "tenant1": 0},
        )
        try:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                before = []
                for index in range(4):
                    tenant = f"tenant{index % 2}"
                    response = await _request(
                        writer,
                        reader,
                        {
                            "op": "submit",
                            "type": "sort",
                            "pages": 8,
                            "slack": 50.0,
                            "tenant": tenant,
                            "tag": index,
                        },
                    )
                    before.append(response)
                for _ in range(200):  # wait for a rebalance pass
                    if router.migrations:
                        break
                    await asyncio.sleep(0.02)
                migrations = list(router.migrations)
                moved = migrations[0].tenant if migrations else None
                after = None
                if moved:
                    after = await _request(
                        writer,
                        reader,
                        {
                            "op": "submit",
                            "type": "sort",
                            "pages": 8,
                            "slack": 50.0,
                            "tenant": moved,
                            "tag": "after",
                        },
                    )
                stats = await router.stats()
                return before, migrations, after, stats
            finally:
                writer.close()
        finally:
            await _stop_farm(servers, router)

    before, migrations, after, stats = asyncio.run(scenario())
    # The first submission predates any possible migration (a pass
    # needs >= 2 window arrivals), so it must land on the packed shard.
    assert before[0]["shard"] == 0, before
    assert migrations, "rebalancer never migrated off the packed placement"
    migration = migrations[0]
    assert migration.source == 0 and migration.target == 1
    # New submissions route to the new shard; the in-flight ones above
    # already drained on the old one (their responses all arrived).
    assert after is not None and after["shard"] == 1, after
    assert stats["placement"][migration.tenant] == 1
    assert stats["conservation"]["complete"], stats["conservation"]


def test_router_drain_answers_inflight_and_refuses_new():
    async def scenario():
        _, servers, router, (host, port) = await _start_farm(
            time_scale=0.02, rebalance_interval=0.0
        )
        try:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # One long-lived query in flight (response not read yet).
                writer.write(
                    json.dumps(
                        {
                            "op": "submit",
                            "type": "sort",
                            "pages": 40,
                            "slack": 50.0,
                            "tenant": "tenant0",
                            "tag": "inflight",
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                await asyncio.sleep(0.05)  # let it reach the shard
                drain = asyncio.ensure_future(router.drain_stats())
                await asyncio.sleep(0.02)
                # A new submission while draining; its refusal and the
                # in-flight query's answer arrive in either order, so
                # read both lines and correlate by tag.
                writer.write(
                    json.dumps(
                        {
                            "op": "submit",
                            "type": "sort",
                            "pages": 8,
                            "slack": 50.0,
                            "tenant": "tenant1",
                            "tag": "late",
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                by_tag = {}
                for _ in range(2):
                    response = json.loads(await reader.readline())
                    by_tag[response["tag"]] = response
                stats = await drain
                return by_tag["late"], by_tag["inflight"], stats
            finally:
                writer.close()
        finally:
            await _stop_farm(servers, router)

    refused, inflight, stats = asyncio.run(scenario())
    assert refused["tag"] == "late"
    assert "draining" in refused["error"]
    assert inflight["tag"] == "inflight"
    assert "error" not in inflight
    conservation = stats["conservation"]
    # Only the in-flight query was ever accepted; it settled and was
    # answered, so the drained farm conserves.
    assert stats["arrivals"] == 1
    assert conservation["complete"], conservation


def test_router_close_is_idempotent():
    async def scenario():
        _, servers, router, _ = await _start_farm(rebalance_interval=0.0)
        await _stop_farm(servers, router)
        await router.close()  # second close: no-op, no exception
        for server in servers:
            await server.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# the sharded shootout pipeline (clipped: no migration requirement)
# ----------------------------------------------------------------------
def test_sharded_shootout_conserves_and_merges():
    from repro.serve.shootout import live_shootout

    report = live_shootout(
        policies=("max",),
        time_scale=0.01,
        max_arrivals=10,
        tenants=2,
        shards=2,
        predict=False,
    )
    assert report.ok, report.failures
    assert report.shards == 2
    merged = report.live["max"]
    assert merged.arrivals == 10
    assert merged.served == 10
    stats = report.router_stats["max"]
    assert stats["conservation"]["complete"], stats["conservation"]
    # The merged farm report spans both shards' disk farms.
    total_disks = two_tenant_config().resources.num_disks
    assert len(merged.disk_busy) == total_disks


def test_sharded_shootout_requires_tenants():
    from repro.serve.shootout import live_shootout

    with pytest.raises(ValueError, match="tenants"):
        live_shootout(policies=("max",), shards=2, time_scale=0.01)
