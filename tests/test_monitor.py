"""Unit tests for monitors: time-weighted stats, tallies, batch means."""

import pytest

from repro.sim import BatchMeans, Series, Simulator, Tally, TimeWeighted


# ----------------------------------------------------------------------
# TimeWeighted
# ----------------------------------------------------------------------
def test_time_weighted_mean_simple():
    sim = Simulator()
    monitor = TimeWeighted(sim, initial=0.0)
    sim.run(until=4.0)
    monitor.record(10.0)
    sim.run(until=10.0)
    # 0 for 4s, 10 for 6s -> 6.0 average.
    assert monitor.mean() == pytest.approx(6.0)


def test_time_weighted_add():
    sim = Simulator()
    monitor = TimeWeighted(sim, initial=2.0)
    monitor.add(3.0)
    assert monitor.value == 5.0
    monitor.add(-5.0)
    assert monitor.value == 0.0


def test_time_weighted_window_mean():
    sim = Simulator()
    monitor = TimeWeighted(sim, initial=1.0)
    sim.run(until=10.0)
    snapshot = monitor.snapshot()
    monitor.record(3.0)
    sim.run(until=20.0)
    assert monitor.mean_since(snapshot) == pytest.approx(3.0)
    assert monitor.mean() == pytest.approx(2.0)


def test_time_weighted_zero_elapsed():
    sim = Simulator()
    monitor = TimeWeighted(sim, initial=7.0)
    assert monitor.mean() == 7.0
    assert monitor.mean_since(monitor.snapshot()) == 7.0


# ----------------------------------------------------------------------
# Tally
# ----------------------------------------------------------------------
def test_tally_mean_variance():
    tally = Tally()
    for value in (2.0, 4.0, 6.0):
        tally.record(value)
    assert tally.mean() == pytest.approx(4.0)
    assert tally.variance() == pytest.approx(4.0)
    assert tally.std() == pytest.approx(2.0)


def test_empty_tally_is_zero():
    tally = Tally()
    assert tally.mean() == 0.0
    assert tally.variance() == 0.0


def test_tally_diff_tracks_increment():
    tally = Tally()
    tally.record(1.0)
    tally.record(2.0)
    checkpoint = tally.copy()
    tally.record(10.0)
    delta = tally.diff(checkpoint)
    assert delta.count == 1
    assert delta.mean() == pytest.approx(10.0)


def test_tally_diff_rejects_inverted_order():
    small = Tally()
    big = Tally()
    big.record(1.0)
    with pytest.raises(ValueError):
        small.diff(big)


def test_tally_reset():
    tally = Tally()
    tally.record(5.0)
    tally.reset()
    assert tally.count == 0 and tally.total == 0.0


# ----------------------------------------------------------------------
# Series
# ----------------------------------------------------------------------
def test_series_records_in_order():
    series = Series()
    series.record(1.0, 10.0)
    series.record(2.0, 20.0)
    assert len(series) == 2
    assert list(series) == [(1.0, 10.0), (2.0, 20.0)]
    assert series.last() == (2.0, 20.0)


def test_empty_series_last_is_none():
    assert Series().last() is None


# ----------------------------------------------------------------------
# BatchMeans
# ----------------------------------------------------------------------
def test_batch_means_groups_observations():
    batches = BatchMeans(batch_size=2)
    batches.extend([1.0, 3.0, 5.0, 7.0, 9.0])
    assert batches.num_batches == 2
    assert batches.batch_means == [2.0, 6.0]
    assert batches.mean() == pytest.approx(4.0)


def test_batch_means_interval_contains_true_mean():
    import numpy as np

    rng = np.random.default_rng(8)
    batches = BatchMeans(batch_size=50)
    batches.extend(rng.normal(0.3, 0.1, size=2000))
    low, high = batches.confidence_interval(0.95)
    assert low < 0.3 < high
    assert batches.half_width(0.95) < 0.05


def test_batch_means_needs_two_batches():
    batches = BatchMeans(batch_size=10)
    batches.extend([1.0] * 10)
    with pytest.raises(ValueError):
        batches.confidence_interval()


def test_batch_means_validates_size():
    with pytest.raises(ValueError):
        BatchMeans(batch_size=0)
