"""The clairvoyant oracle: solver optimality, regret soundness, traces.

Three layers of evidence that the regret column can be trusted:

* the exact branch-and-bound agrees with an independent brute-force
  enumeration on synthetic instances (including 8-query ones);
* the heuristic never reports a better objective than the exact
  solver on the same instance (it searches a subset of the space);
* across a seeded scenario sweep of every registered policy, regret
  is non-negative and the oracle's trace agrees with the engine's
  cached result for the same cell.

Plus the trace persistence contract: versioned JSONL round-trips are
bit-identical and version mismatches refuse to load.
"""

import random

import pytest

from repro.core.broker import TRACE_FORMAT_VERSION, BrokerTrace, replay_trace
from repro.experiments import runner
from repro.oracle import (
    OracleProblem,
    OracleQuery,
    brute_force,
    solve,
    solve_scenario,
    trace_scenario,
)
from repro.policies import DEFAULT_POLICIES
from repro.scenarios import ScenarioGenerator


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    """Point the persistent cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(runner, "_jobs_override", None)
    monkeypatch.setattr(runner, "_cache_dir_override", None)
    monkeypatch.setattr(runner, "_cache_enabled_override", None)
    runner.clear_cache()
    runner.reset_stats()


def synthetic_problem(
    seed: int, count: int, pool: int = 40, fixed_grant: bool = False
) -> OracleProblem:
    """A random-but-seeded instance built straight from OracleQuery."""
    rng = random.Random(seed)
    queries = []
    for qid in range(count):
        arrival = round(rng.uniform(0.0, 12.0), 3)
        base = round(rng.uniform(1.0, 5.0), 3)
        min_pages = rng.randint(4, 12)
        max_pages = min_pages if fixed_grant else min_pages + rng.randint(0, 14)
        deadline = arrival + base * rng.uniform(1.1, 2.5)
        queries.append(
            OracleQuery(
                qid=qid,
                class_name="S",
                arrival=arrival,
                deadline=round(deadline, 3),
                min_pages=min_pages,
                max_pages=max_pages,
                base_seconds=base,
                admitted=False,
                realized_start=None,
                realized_missed=False,
            )
        )
    queries.sort(key=lambda q: (q.arrival, q.qid))
    return OracleProblem(
        queries=tuple(queries),
        pool_pages=pool,
        policy="synthetic",
        recorded_misses=0,
    )


# ----------------------------------------------------------------------
# exact solver vs independent brute force
# ----------------------------------------------------------------------
def test_exact_matches_brute_force():
    for seed in range(6):
        problem = synthetic_problem(seed, count=4 + seed % 2, pool=25)
        exact = solve(problem, exact_limit=10)
        reference = brute_force(problem)
        assert exact.tag == "exact"
        assert exact.misses == reference.misses, f"seed {seed}"
        if exact.misses == reference.misses:
            assert exact.total_wait == pytest.approx(
                reference.total_wait, abs=1e-6
            ), f"seed {seed}"


def test_exact_matches_brute_force_on_eight_queries():
    # Fixed grants keep the 8! permutation space brute-forceable.
    problem = synthetic_problem(99, count=8, pool=30, fixed_grant=True)
    exact = solve(problem, exact_limit=10, node_limit=2_000_000)
    reference = brute_force(problem)
    assert exact.tag == "exact"
    assert exact.misses == reference.misses
    assert exact.total_wait == pytest.approx(reference.total_wait, abs=1e-6)


def test_heuristic_never_beats_exact():
    for seed in range(6):
        problem = synthetic_problem(10 + seed, count=5, pool=25)
        exact = solve(problem, exact_limit=10)
        heuristic = solve(problem, exact_limit=0)
        assert exact.tag == "exact"
        assert heuristic.tag == "bound"
        assert (heuristic.misses, heuristic.total_wait) >= (
            exact.misses,
            exact.total_wait - 1e-9,
        ), f"seed {seed}: heuristic beat the proven optimum"


def test_solver_is_deterministic():
    problem = synthetic_problem(3, count=12, pool=30)
    first = solve(problem, exact_limit=0)
    second = solve(problem, exact_limit=0)
    assert first == second


def test_oracle_schedule_respects_constraints():
    problem = synthetic_problem(7, count=10, pool=24)
    result = solve(problem)
    by_qid = {q.qid: q for q in problem.queries}
    events = []
    for item in result.schedule:
        query = by_qid[item.qid]
        assert query.min_pages <= item.grant <= query.max_pages
        assert item.start >= query.arrival - 1e-9
        assert item.finish <= query.deadline + 1e-6
        events.append((item.start, item.grant))
        events.append((item.finish, -item.grant))
    events.sort()
    in_use = 0
    for _t, delta in events:
        in_use += delta
        assert in_use <= problem.pool_pages
    assert result.served + result.misses == problem.query_count


# ----------------------------------------------------------------------
# regret over real scenario traces, every registered policy
# ----------------------------------------------------------------------
def test_regret_nonnegative_across_policy_sweep():
    generator = ScenarioGenerator(1)
    scenarios = generator.batch(2, families=("mix", "bursty"))
    for scenario in scenarios:
        for policy in DEFAULT_POLICIES:
            oracle = solve_scenario(scenario, policy, cache=False)
            assert oracle.regret >= 0, (
                f"{scenario.name} x {policy}: oracle missed {oracle.misses} "
                f"> recorded {oracle.recorded_misses}"
            )
            assert oracle.misses + oracle.served == oracle.query_count


def test_oracle_trace_agrees_with_engine_result():
    scenario = ScenarioGenerator(1).generate("mix", 0)
    trace, result = trace_scenario(scenario, "minmax")
    problem = OracleProblem.from_trace(trace)
    assert problem.query_count == result.served
    assert problem.recorded_misses == result.missed
    assert problem.policy == "MinMax"  # the policy's display name


def test_solve_scenario_hits_cache_on_rerun():
    scenario = ScenarioGenerator(1).generate("bursty", 0)
    first = solve_scenario(scenario, "max")
    second = solve_scenario(scenario, "max")
    assert first == second


# ----------------------------------------------------------------------
# trace persistence: versioned JSONL round-trip
# ----------------------------------------------------------------------
def recorded_trace() -> BrokerTrace:
    scenario = ScenarioGenerator(2).generate("mix", 1)
    trace, _result = trace_scenario(scenario, "pmm")
    return trace


def test_trace_roundtrip_bit_identical(tmp_path):
    trace = recorded_trace()
    assert trace.ops, "recorder captured nothing"
    first = tmp_path / "trace.jsonl"
    second = tmp_path / "again.jsonl"
    trace.save(first)
    loaded = BrokerTrace.load(first)
    assert loaded.ops == trace.ops
    assert loaded.meta == trace.meta
    loaded.save(second)
    assert first.read_bytes() == second.read_bytes()


def test_trace_version_mismatch_raises(tmp_path):
    trace = recorded_trace()
    path = tmp_path / "trace.jsonl"
    trace.save(path)
    lines = path.read_text().splitlines()
    header = lines[0].replace(
        f'"version": {TRACE_FORMAT_VERSION}', '"version": 999'
    )
    path.write_text("\n".join([header] + lines[1:]) + "\n")
    with pytest.raises(ValueError, match="version"):
        BrokerTrace.load(path)


def test_replay_and_solve_accept_trace_paths(tmp_path):
    trace = recorded_trace()
    path = tmp_path / "trace.jsonl"
    trace.save(path)
    # The broker replay accepts the path directly...
    from repro.policies import make_policy

    pool = trace.meta["total_pages"]
    sample = trace.meta["sample_size"]
    live = replay_trace(trace, make_policy("pmm"), pool, sample)
    from_path = replay_trace(str(path), make_policy("pmm"), pool, sample)
    assert live == from_path
    # ...and so does the oracle, with identical results.
    assert solve(str(path)) == solve(trace)
