"""Unit tests for the static policies and the policy factory."""

import pytest

from repro.core.allocation import QueryDemand
from repro.core.pmm import PMM
from repro.policies import MaxPolicy, MinMaxPolicy, ProportionalPolicy, make_policy
from repro.rtdbs.config import PMMParams


def demands():
    return [QueryDemand(i, float(i), 10, 100) for i in range(1, 5)]


def test_max_policy_name_and_behaviour():
    policy = MaxPolicy()
    assert policy.name == "Max"
    allocation = policy.allocate(demands(), 250)
    assert allocation == {1: 100, 2: 100, 3: 0, 4: 0}


def test_minmax_policy_unbounded():
    policy = MinMaxPolicy()
    assert policy.name == "MinMax"
    assert policy.target_mpl is None
    allocation = policy.allocate(demands(), 250)
    assert all(pages > 0 for pages in allocation.values())


def test_minmax_policy_with_limit():
    policy = MinMaxPolicy(2)
    assert policy.name == "MinMax-2"
    assert policy.target_mpl == 2
    allocation = policy.allocate(demands(), 1000)
    assert [qid for qid, pages in allocation.items() if pages > 0] == [1, 2]


def test_proportional_policy_names():
    assert ProportionalPolicy().name == "Proportional"
    assert ProportionalPolicy(4).name == "Proportional-4"


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        MinMaxPolicy(0)
    with pytest.raises(ValueError):
        ProportionalPolicy(-1)


def test_static_policies_ignore_feedback():
    policy = MinMaxPolicy()
    assert policy.on_batch(None) is False  # type: ignore[arg-type]
    policy.on_departure(None)  # type: ignore[arg-type]
    policy.reset()


@pytest.mark.parametrize(
    "spec, expected_type, expected_name",
    [
        ("max", MaxPolicy, "Max"),
        ("MAX", MaxPolicy, "Max"),
        ("minmax", MinMaxPolicy, "MinMax"),
        ("minmax-10", MinMaxPolicy, "MinMax-10"),
        ("proportional", ProportionalPolicy, "Proportional"),
        ("proportional-3", ProportionalPolicy, "Proportional-3"),
        ("pmm", PMM, "PMM"),
    ],
)
def test_make_policy_specs(spec, expected_type, expected_name):
    policy = make_policy(spec, PMMParams())
    assert isinstance(policy, expected_type)
    assert policy.name == expected_name


def test_make_policy_unknown_spec():
    with pytest.raises(ValueError):
        make_policy("lru")


def test_make_policy_pmm_default_params():
    policy = make_policy("pmm")
    assert isinstance(policy, PMM)
    assert policy.params.sample_size == 30


# ----------------------------------------------------------------------
# the registry is the single construction path
# ----------------------------------------------------------------------
def test_registry_default_policy_set_resolves():
    from repro.policies import DEFAULT_POLICIES

    names = [make_policy(spec).name for spec in DEFAULT_POLICIES]
    assert names == ["Max", "MinMax", "MinMax-4", "Proportional", "PMM", "FairPMM"]


def test_registry_unknown_spec_lists_available():
    from repro.policies import available_policies

    with pytest.raises(ValueError) as excinfo:
        make_policy("lru")
    message = str(excinfo.value)
    for spec in available_policies():
        assert spec in message


def test_registry_forwards_factory_kwargs():
    from repro.core.fairness import FairPMM

    policy = make_policy("fairpmm", goals={"Medium": 0.5})
    assert isinstance(policy, FairPMM)
    assert policy.goals == {"Medium": 0.5}


def test_registry_parametric_spec_rejects_garbage_suffix():
    with pytest.raises(ValueError):
        make_policy("minmax-ten")


def test_register_policy_extends_the_namespace():
    from repro.policies import registry

    class _Stub(MaxPolicy):
        name = "Stub"

    registry.register_policy("stub-test", lambda pmm_params=None, **kw: _Stub(**kw))
    try:
        assert isinstance(make_policy("STUB-TEST"), _Stub)
        assert "stub-test" in registry.available_policies()
    finally:
        del registry._EXACT["stub-test"]
