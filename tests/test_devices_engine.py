"""Differential property tests for the extracted device engine.

The refactor moved the disk model out of the DES into
:mod:`repro.core.devices` so the live plane can share it.  These tests
pin the extraction three ways:

* the ED+elevator queue selection is replayed against an independently
  written reference scheduler (plain per-selection list scan instead of
  the lazy heap) over randomized tie-heavy workloads with mid-run
  cancellations;
* the ``Seek + RotateDelay + Transfer`` pricing and bounded
  sequential-stream tracking are replayed against the formulas embedded
  here (not imports of the code under test);
* a full DES run is recorded at the engine boundary (every pricing,
  transfer, and prefetch-cache call per disk) and the trace is replayed
  through *fresh* engine objects, asserting bit-identical service times
  and hit sequences -- the "pre-refactor DES behaviour is a pure
  function of this state" contract.
"""

import heapq
import math
import random

import pytest

from repro import RTDBSystem, baseline
from repro.core.devices import DeviceCore, PrefetchCache
from repro.rtdbs.config import ResourceParams
from repro.sim.rng import Streams


def small_resources():
    return ResourceParams(num_disks=1, memory_pages=16)


# ----------------------------------------------------------------------
# ED + elevator selection vs an independent reference scheduler
# ----------------------------------------------------------------------
class StubRequest:
    """Minimal queue item: the core only reads these two attributes."""

    __slots__ = ("tag", "cylinder", "start_page", "npages", "cancelled")

    def __init__(self, tag, cylinder, start_page, npages):
        self.tag = tag
        self.cylinder = cylinder
        self.start_page = start_page
        self.npages = npages
        self.cancelled = False

    def __repr__(self):  # pragma: no cover - assertion messages only
        return f"StubRequest({self.tag}, cyl={self.cylinder})"


class ReferenceScheduler:
    """ED + elevator written the obvious way: scan everything per pick.

    Deliberately shares no code with ``DeviceCore``: selection is a
    full-list minimum over live entries, ties sort by submission order,
    and the elevator is restated from the paper's rule (nearest
    cylinder at-or-ahead of the head in the sweep direction, reversing
    the sweep when nothing lies ahead).
    """

    def __init__(self, resources):
        self.head = resources.num_cylinders // 2
        self.direction = 1
        self._cylinder_size = resources.cylinder_size
        self._entries = []
        self.tie_picks = 0

    def push(self, priority, seq, item):
        self._entries.append((priority, seq, item))

    def select(self):
        alive = [e for e in self._entries if not e[2].cancelled]
        if not alive:
            self._entries = []
            return None
        best = min(e[0] for e in alive)
        ties = sorted((e for e in alive if e[0] == best), key=lambda e: e[1])
        if len(ties) == 1:
            chosen = ties[0][2]
        else:
            self.tie_picks += 1
            chosen = self._elevator([e[2] for e in ties])
        self._entries = [
            e for e in self._entries if e[2] is not chosen and not e[2].cancelled
        ]
        return chosen

    def _elevator(self, requests):
        head = self.head
        ahead = [r for r in requests if (r.cylinder - head) * self.direction >= 0]
        if not ahead:
            self.direction = -self.direction
            ahead = list(requests)
        return min(ahead, key=lambda r: abs(r.cylinder - head))

    def note_transfer(self, start_page, npages):
        end_cylinder = (start_page + npages - 1) // self._cylinder_size
        if end_cylinder != self.head:
            self.direction = 1 if end_cylinder > self.head else -1
        self.head = end_cylinder


@pytest.mark.parametrize("seed", range(8))
def test_select_matches_reference_ed_elevator(seed):
    """Core and reference agree selection-for-selection on tie-heavy
    randomized queues with mid-run cancellations, and their head/sweep
    state stays identical through every served transfer."""
    rng = random.Random(seed)
    resources = small_resources()
    core = DeviceCore(resources)
    ref = ReferenceScheduler(resources)
    cylinder_size = resources.cylinder_size

    heap = []
    seq = 0
    pending = []
    served = 0

    def push_one():
        nonlocal seq
        seq += 1
        cylinder = rng.randrange(resources.num_cylinders)
        npages = rng.randint(1, 2 * cylinder_size)
        item = StubRequest(seq, cylinder, cylinder * cylinder_size, npages)
        # Five priority levels only: ties are the interesting regime.
        priority = float(rng.randint(1, 5))
        heapq.heappush(heap, (priority, seq, item))
        ref.push(priority, seq, item)
        pending.append(item)

    def drain_one():
        chosen = core.select(heap)
        expected = ref.select()
        assert chosen is expected, (
            f"seed {seed}: core served {chosen}, reference {expected}"
        )
        if chosen is None:
            return False
        pending.remove(chosen)
        core.note_transfer(chosen.start_page, chosen.npages)
        ref.note_transfer(chosen.start_page, chosen.npages)
        assert (core.head, core.direction) == (ref.head, ref.direction)
        return True

    for _ in range(400):
        action = rng.random()
        if action < 0.5:
            push_one()
        elif action < 0.6 and pending:
            rng.choice(pending).cancelled = True
        elif drain_one():
            served += 1
    while heap:
        if drain_one():
            served += 1

    assert served > 50  # the trial actually exercised the queue
    assert ref.tie_picks > 10, "the workload must hit the elevator path"
    assert core.head == ref.head and core.direction == ref.direction


def test_select_skips_cancelled_and_empties_to_none():
    resources = small_resources()
    core = DeviceCore(resources)
    items = [StubRequest(i, 10 * i, 0, 1) for i in range(3)]
    heap = []
    for i, item in enumerate(items):
        heapq.heappush(heap, (1.0, i, item))
    items[0].cancelled = True
    items[2].cancelled = True
    assert core.select(heap) is items[1]
    assert core.select(heap) is None
    assert core.select([]) is None


# ----------------------------------------------------------------------
# pricing and stream tracking vs the embedded reference formulas
# ----------------------------------------------------------------------
class ReferencePricer:
    """Section 4.2 pricing restated from the config parameters."""

    def __init__(self, resources):
        self.resources = resources
        self.head = resources.num_cylinders // 2
        self.tails = []  # oldest first, bounded like the prefetch cache
        self.max_tails = max(1, resources.disk_cache_pages // resources.block_size)
        self.continuations = 0

    def price(self, start_page, npages, cylinder):
        transfer = npages * self.resources.transfer_s_per_page
        if start_page in self.tails:
            self.continuations += 1
            return transfer
        seek = self.resources.seek_factor_ms * math.sqrt(abs(cylinder - self.head)) / 1e3
        return seek + self.resources.rotation_s / 2.0 + transfer

    def note_transfer(self, start_page, npages):
        self.head = (start_page + npages - 1) // self.resources.cylinder_size
        if start_page in self.tails:
            self.tails.remove(start_page)
        self.tails.append(start_page + npages)
        while len(self.tails) > self.max_tails:
            self.tails.pop(0)


@pytest.mark.parametrize("seed", range(4))
def test_service_time_matches_reference_formulas(seed):
    """Without a rotation stream both the core and the reference price
    the deterministic half-rotation, so every access must agree exactly
    -- including stream continuations and tail evictions."""
    rng = random.Random(seed)
    resources = small_resources()
    core = DeviceCore(resources)  # no rotation stream: half-rotation
    ref = ReferencePricer(resources)
    cylinder_size = resources.cylinder_size
    open_tails = []

    for _ in range(300):
        if open_tails and rng.random() < 0.4:
            start_page = rng.choice(open_tails)  # continue a scan
        else:
            start_page = rng.randrange(resources.pages_per_disk - 2 * cylinder_size)
        npages = rng.randint(1, resources.block_size)
        cylinder = start_page // cylinder_size
        got = core.service_time(start_page, npages, cylinder)
        want = ref.price(start_page, npages, cylinder)
        assert got == want, f"seed {seed}: priced {got!r}, reference {want!r}"
        core.note_transfer(start_page, npages)
        ref.note_transfer(start_page, npages)
        if start_page in open_tails:
            open_tails.remove(start_page)
        open_tails.append(start_page + npages)
        del open_tails[:-ref.max_tails]

    assert core.sequential_continuations == ref.continuations
    assert ref.continuations > 30  # the trial exercised the stream path
    assert core.head == ref.head


def test_stochastic_rotation_draws_from_the_stream():
    resources = small_resources()
    stream = Streams(11).stream("rotation.0")
    twin = Streams(11).stream("rotation.0")
    core = DeviceCore(resources, stream)
    transfer = 4 * resources.transfer_s_per_page
    seek = resources.seek_time(abs(0 - core.head))
    priced = core.service_time(0, 4, 0)
    assert priced == seek + twin.uniform(0.0, resources.rotation_s) + transfer


# ----------------------------------------------------------------------
# recorded DES trace replayed through fresh engine objects
# ----------------------------------------------------------------------
def test_des_trace_replays_identically_through_fresh_engine(monkeypatch):
    """Record every engine-boundary call of a real DES run (pricing,
    transfers, prefetch-cache queries) and replay the trace through
    fresh ``DeviceCore``/``PrefetchCache`` objects: service times and
    hit sequences must reproduce bit for bit.  This is the refactor's
    core claim -- the DES disk is a pure adapter over this state."""
    config = baseline(arrival_rate=0.3, scale=0.05, seed=3, duration=60.0)

    core_logs = {}
    cache_logs = {}
    real_price = DeviceCore.service_time
    real_transfer = DeviceCore.note_transfer
    real_contains = PrefetchCache.contains_all
    real_touch = PrefetchCache.touch
    real_insert = PrefetchCache.insert

    def rec_price(self, start_page, npages, cylinder):
        out = real_price(self, start_page, npages, cylinder)
        core_logs.setdefault(id(self), []).append(
            ("price", start_page, npages, cylinder, out)
        )
        return out

    def rec_transfer(self, start_page, npages):
        core_logs.setdefault(id(self), []).append(("transfer", start_page, npages))
        real_transfer(self, start_page, npages)

    def rec_contains(self, start_page, npages):
        out = real_contains(self, start_page, npages)
        cache_logs.setdefault(id(self), []).append(
            ("contains", start_page, npages, out)
        )
        return out

    def rec_touch(self, start_page, npages):
        cache_logs.setdefault(id(self), []).append(("touch", start_page, npages))
        real_touch(self, start_page, npages)

    def rec_insert(self, start_page, npages):
        cache_logs.setdefault(id(self), []).append(("insert", start_page, npages))
        real_insert(self, start_page, npages)

    monkeypatch.setattr(DeviceCore, "service_time", rec_price)
    monkeypatch.setattr(DeviceCore, "note_transfer", rec_transfer)
    monkeypatch.setattr(PrefetchCache, "contains_all", rec_contains)
    monkeypatch.setattr(PrefetchCache, "touch", rec_touch)
    monkeypatch.setattr(PrefetchCache, "insert", rec_insert)

    system = RTDBSystem(config, "minmax")
    disk_cores = {disk.disk_id: id(disk.core) for disk in system.disks}
    disk_caches = {disk.disk_id: id(disk.core.cache) for disk in system.disks}
    result = system.run()
    recorded_stats = {
        disk.disk_id: (
            disk.cache.hits,
            disk.cache.misses,
            disk.core.sequential_continuations,
            disk.core.head,
            disk.core.direction,
        )
        for disk in system.disks
    }
    monkeypatch.undo()

    assert result.served > 10
    total_prices = sum(
        sum(1 for op in log if op[0] == "price") for log in core_logs.values()
    )
    assert total_prices > 50, "the run must exercise real disk traffic"

    for disk_id, core_id in disk_cores.items():
        fresh = DeviceCore(
            config.resources, Streams(config.seed).stream(f"rotation.{disk_id}")
        )
        for op in core_logs.get(core_id, []):
            if op[0] == "price":
                _, start_page, npages, cylinder, recorded = op
                replayed = fresh.service_time(start_page, npages, cylinder)
                assert replayed == recorded, (
                    f"disk {disk_id}: replayed {replayed!r} for "
                    f"[{start_page}+{npages}], recorded {recorded!r}"
                )
            else:
                _, start_page, npages = op
                fresh.note_transfer(start_page, npages)
        hits, misses, continuations, head, direction = recorded_stats[disk_id]
        assert fresh.sequential_continuations == continuations
        assert fresh.head == head
        assert fresh.direction == direction

    some_hit = False
    for disk_id, cache_id in disk_caches.items():
        fresh_cache = PrefetchCache(config.resources.disk_cache_pages)
        for op in cache_logs.get(cache_id, []):
            if op[0] == "contains":
                _, start_page, npages, recorded = op
                assert fresh_cache.contains_all(start_page, npages) == recorded
                some_hit = some_hit or recorded
            elif op[0] == "touch":
                fresh_cache.touch(op[1], op[2])
            else:
                fresh_cache.insert(op[1], op[2])
        hits, misses, _continuations, _head, _direction = recorded_stats[disk_id]
        assert fresh_cache.hits == hits
        assert fresh_cache.misses == misses
    assert some_hit, "the run must produce at least one prefetch-cache hit"
