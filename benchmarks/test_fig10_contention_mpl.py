"""Figure 10: observed MPL with 6 disks (moderate contention).

Paper's claims: PMM's observed MPL remains consistently close to
MinMax-10's (the best static choice), well above Max's and below
unbounded MinMax's under heavy load.
"""

from repro.experiments.figures import figure_10_contention_mpl


def test_fig10_contention_mpl(benchmark, settings, once):
    figure = once(benchmark, figure_10_contention_mpl, settings)
    print("\n" + figure.render())

    heavy_rate = figure.series["max"][-1][0]
    pmm = figure.value("pmm", heavy_rate)
    limited = figure.value("minmax-2", heavy_rate)
    unbounded = figure.value("minmax", heavy_rate)
    max_policy = figure.value("max", heavy_rate)

    # Max pinned low; the liberal policies well above it.
    assert max_policy < 2.5
    assert unbounded > 2 * max_policy
    # PMM operates in the same region as the limited MinMax, not at
    # either extreme.
    assert pmm > max_policy
    assert pmm <= unbounded + 1.0
