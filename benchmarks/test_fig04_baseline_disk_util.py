"""Figure 4: disk utilisation vs arrival rate (baseline).

Paper's claims: Max's tight MPL cap keeps its disk utilisation nearly
flat as load rises (it cannot exploit the disks), while the liberal
policies' utilisation climbs with the arrival rate.
"""

from repro.experiments.figures import figure_04_baseline_disk_util


def test_fig04_baseline_disk_util(benchmark, settings, once):
    figure = once(benchmark, figure_04_baseline_disk_util, settings)
    print("\n" + figure.render())

    max_series = [value for _x, value in figure.series["max"]]
    minmax_series = [value for _x, value in figure.series["minmax"]]

    # Max barely rises; MinMax climbs substantially.
    assert max_series[-1] - max_series[0] < 0.15
    assert minmax_series[-1] > minmax_series[0]
    # Under heavy load the liberal policies use the disks far more.
    assert minmax_series[-1] > 1.5 * max_series[-1]
    # Nobody saturates in the 10-disk baseline (memory is the
    # bottleneck -- that is the experiment's premise).
    for name, points in figure.series.items():
        for _x, value in points:
            assert value < 0.9, f"{name} should not saturate the disks"
