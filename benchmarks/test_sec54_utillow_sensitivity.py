"""Section 5.4: PMM's insensitivity to the UtilLow parameter.

Paper's claims: varying UtilLow from 0.50 to 0.80 leaves PMM's miss
ratio approximately unchanged, because the desirable-utilisation range
only steers the MPL during the initial start-up period (after which
the miss-ratio projection dominates).  The default of 0.70 therefore
suffices.
"""

from repro.experiments.figures import section_54_utillow_sensitivity


def test_sec54_utillow_sensitivity(benchmark, settings, once):
    figure = once(benchmark, section_54_utillow_sensitivity, settings)
    print("\n" + figure.render())

    values = [miss for _util_low, miss in figure.series["pmm"]]
    spread = max(values) - min(values)
    # "Approximately the same performance": the spread across UtilLow
    # settings is small in absolute terms.
    assert spread <= 0.15
    for value in values:
        assert 0.0 <= value <= 1.0
