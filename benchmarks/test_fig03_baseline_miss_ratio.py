"""Figure 3: miss ratio vs arrival rate, memory-bound baseline.

Paper's claims: MinMax delivers the lowest miss ratio, PMM follows it
very closely, Proportional deteriorates as load mounts, and Max --
whose maximum-allocation admission pins the MPL below ~2 -- is worst,
missing several times as many deadlines as MinMax under heavy load.
"""

from repro.experiments.figures import figure_03_baseline_miss_ratio


def test_fig03_baseline_miss_ratio(benchmark, settings, once):
    figure = once(benchmark, figure_03_baseline_miss_ratio, settings)
    print("\n" + figure.render())

    heavy_max = figure.final_value("max")
    heavy_minmax = figure.final_value("minmax")
    heavy_prop = figure.final_value("proportional")
    heavy_pmm = figure.final_value("pmm")

    # MinMax wins under heavy load; Max is clearly the worst.
    assert heavy_minmax < heavy_max
    assert heavy_prop < heavy_max
    assert heavy_max > 1.5 * heavy_minmax
    # Proportional is inferior to MinMax (Section 5.1 / [Corn89, Yu93]).
    assert heavy_prop > heavy_minmax
    # PMM tracks the winner closely (well under Max, near MinMax).
    assert heavy_pmm < heavy_max
    assert heavy_pmm <= heavy_prop + 0.05
    # Light load is benign for the liberal policies.
    light_rate = figure.series["minmax"][0][0]
    assert figure.value("minmax", light_rate) < 0.15
    # Miss ratios grow with load for every policy.
    for name, points in figure.series.items():
        assert points[-1][1] >= points[0][1], f"{name} should degrade with load"
