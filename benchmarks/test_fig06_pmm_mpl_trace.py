"""Figure 6: PMM's target-MPL trajectory at lambda = 0.075 (baseline).

Paper's claims: PMM starts in Max mode, quickly detects that Max
under-utilises the machine, switches to MinMax with an RU-heuristic
target, then the miss-ratio projection steers the target into a stable
band within a few batches.
"""

from repro.experiments.figures import figure_06_pmm_mpl_trace


def test_fig06_pmm_mpl_trace(benchmark, settings, once):
    figure = once(benchmark, figure_06_pmm_mpl_trace, settings)
    trace = figure.series["pmm"]
    print(f"\n{figure.figure_id}: {figure.title}")
    for time, mpl in trace[:20]:
        print(f"  t={time:8.1f}s  target MPL = {mpl:.1f}")
    if len(trace) > 20:
        print(f"  ... ({len(trace)} batches total)")

    assert len(trace) >= 5, "PMM must re-evaluate several times"
    result = figure.raw["pmm"][0][1]
    modes = [mode for _t, mode in result.pmm_mode_trace]
    # It must leave Max mode (the workload is memory-bound).
    assert "minmax" in modes
    # And spend the bulk of the run in MinMax mode.
    assert modes.count("minmax") > len(modes) / 2
    # The MinMax-mode targets stabilise: the last third of the trace
    # varies far less than the whole trace's range.
    values = [mpl for _t, mpl in trace]
    tail = values[-max(3, len(values) // 3):]
    assert max(tail) - min(tail) <= max(3.0, 0.7 * (max(values) - min(values)))
