"""Figure 5: observed MPL vs arrival rate (baseline).

Paper's claims: Max admits fewer than 2 queries at a time (each needs
~F*||R|| pages of the pool); MinMax and Proportional reach much higher
MPLs, growing with the load; PMM achieves high MPLs too, mimicking
MinMax in this memory-bound setting.
"""

from repro.experiments.figures import figure_05_baseline_mpl


def test_fig05_baseline_mpl(benchmark, settings, once):
    figure = once(benchmark, figure_05_baseline_mpl, settings)
    print("\n" + figure.render())

    # Max's observed MPL stays pinned below ~2 at every load.
    for _x, value in figure.series["max"]:
        assert value < 2.5

    heavy_rate = figure.series["max"][-1][0]
    # The liberal policies reach multiples of Max's MPL under load.
    assert figure.value("minmax", heavy_rate) > 2 * figure.value("max", heavy_rate)
    assert figure.value("proportional", heavy_rate) > 2 * figure.value("max", heavy_rate)
    assert figure.value("pmm", heavy_rate) > figure.value("max", heavy_rate)
    # MPL grows with load for the liberal policies.
    minmax_series = [value for _x, value in figure.series["minmax"]]
    assert minmax_series[-1] > minmax_series[0]
