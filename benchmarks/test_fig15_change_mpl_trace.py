"""Figure 15: PMM's MPL trace under the alternating workload.

Paper's claims: the target MPL rises during Medium phases (MinMax mode
with a tuned target) and collapses during Small phases (back to Max
mode, whose realized MPL is what the trace shows).
"""

from repro.experiments.figures import figure_15_change_mpl_trace


def test_fig15_change_mpl_trace(benchmark, settings, once):
    figure = once(benchmark, figure_15_change_mpl_trace, settings)
    trace = figure.series["pmm"]
    print(f"\n{figure.figure_id}: {figure.title} -- {len(trace)} batches")
    for time, mpl in trace[:: max(1, len(trace) // 20)]:
        print(f"  t={time:9.1f}s  MPL = {mpl:.1f}")

    assert len(trace) >= 6
    values = [mpl for _t, mpl in trace]
    # The trace must actually move: high MPLs in Medium phases versus
    # low ones around the Small phases.
    assert max(values) >= 2 * max(1.0, min(values))
    result = figure.raw["pmm"][0][1]
    # Mode changes and/or restarts occurred along the way.
    modes = {mode for _t, mode in result.pmm_mode_trace}
    assert "minmax" in modes
    assert result.pmm_restarts >= 1
