"""Figure 16: miss ratio for the external-sort workload.

Paper's claims: with sorts (whose maximum demand equals the operand
size but whose CPU/disk load is lighter than the joins'), memory is an
even more critical resource, so Max performs even worse relative to
the liberal policies than in the join baseline; PMM again tracks
MinMax closely.
"""

from repro.experiments.figures import figure_16_external_sort


def test_fig16_external_sort(benchmark, settings, once):
    figure = once(benchmark, figure_16_external_sort, settings)
    print("\n" + figure.render())

    light_rate, mid_rate, heavy_rate = (x for x, _y in figure.series["max"])

    # Max is the worst (or tied-worst) policy once the system loads up.
    assert figure.value("max", mid_rate) > figure.value("minmax", mid_rate)
    assert figure.value("max", mid_rate) > figure.value("pmm", mid_rate)
    assert figure.final_value("max") >= figure.final_value("minmax") - 0.06
    # PMM sides with the liberal policies throughout.
    for rate in (light_rate, mid_rate, heavy_rate):
        assert figure.value("pmm", rate) <= figure.value("minmax", rate) + 0.06
    # Sorts under MinMax handle the light end comfortably.
    assert figure.value("minmax", light_rate) < 0.15
