"""Extension: FairPMM vs PMM on the multiclass workload (Section 5.6).

The paper closes its evaluation observing that PMM's drift into Max
mode under a Small-dominated multiclass workload starves the Medium
class (Figure 18) and announces future work: let an administrator
specify desired relative class miss ratios.  ``repro`` implements that
extension (:class:`repro.core.fairness.FairPMM`); this benchmark is its
ablation -- same workload as Figure 18, PMM vs FairPMM.

Expectations: FairPMM narrows the Medium-vs-Small miss-ratio gap
without materially hurting the overall system miss ratio.
"""

from repro.experiments.runner import run_config
from repro.workloads.presets import multiclass


def test_ext_fairness_narrows_figure18_bias(benchmark, settings, once):
    def run_pair():
        config = multiclass(
            small_rate=0.8, medium_rate=0.05, scale=settings.scale, seed=settings.seed
        )
        plain = run_config(config, "pmm", settings)
        fair = run_config(config, "fairpmm", settings)
        return plain, fair

    plain, fair = once(benchmark, run_pair)

    def describe(result):
        return (
            result.per_class["Medium"].miss_ratio,
            result.per_class["Small"].miss_ratio,
            result.miss_ratio,
        )

    plain_medium, plain_small, plain_system = describe(plain)
    fair_medium, fair_small, fair_system = describe(fair)
    print("\nExtension: FairPMM vs PMM (multiclass, small_rate=0.8)")
    print(f"  PMM     : Medium {plain_medium:.3f}  Small {plain_small:.3f}  system {plain_system:.3f}")
    print(f"  FairPMM : Medium {fair_medium:.3f}  Small {fair_small:.3f}  system {fair_system:.3f}")

    plain_gap = plain_medium - plain_small
    fair_gap = fair_medium - fair_small
    # The extension must not widen the bias, and usually narrows it.
    assert fair_gap <= plain_gap + 0.02
    # Fairness is not free, but it must not wreck the system ratio.
    assert fair_system <= plain_system + 0.10
