"""Figures 12-14: miss ratios under an alternating Small/Medium workload.

Paper's claims (Section 5.3): Max handles the Small phases well (the
Small joins are disk-bound, and maximum allocations are cheap for
them) but suffers in the memory-bound Medium phases; unbounded MinMax
does the opposite -- poor Small phases from unrestrained admission;
PMM detects each workload change, restarts, and matches the better
static policy in *both* phase types, yielding the lowest Medium-phase
miss ratios without giving up the Small phases.
"""

from repro.experiments.figures import figure_12_14_workload_changes


def _phase_means(runs, phases, policy, phase_name):
    means = [
        miss
        for (start, end, name), miss in zip(phases, runs[policy]["phase_miss"])
        if name == phase_name
    ]
    return sum(means) / len(means) if means else 0.0


def test_fig12_14_workload_changes(benchmark, settings, once):
    runs, phases = once(benchmark, figure_12_14_workload_changes, settings)
    print("\nFigures 12-14: per-phase average miss ratios")
    print("phases:", [(round(s), round(e), name) for s, e, name in phases])
    for policy in runs:
        rounded = [round(m, 3) for m in runs[policy]["phase_miss"]]
        print(f"  {policy:8s}: {rounded}")

    medium = {p: _phase_means(runs, phases, p, "Medium") for p in runs}
    small = {p: _phase_means(runs, phases, p, "Small") for p in runs}

    # PMM's Medium phases beat unbounded-admission MinMax... or at
    # least hold close to the better static policy.
    assert medium["pmm"] <= max(medium["max"], medium["minmax"]) + 0.03
    # PMM's Small phases stay near Max's (it switches back to Max mode).
    assert small["pmm"] <= small["minmax"] + 0.05
    # PMM actually detected the changes (restarts happened).
    assert runs["pmm"]["result"].pmm_restarts >= 1
    # Sanity: all phase averages are proper ratios.
    for policy in runs:
        for miss in runs[policy]["phase_miss"]:
            assert 0.0 <= miss <= 1.0
