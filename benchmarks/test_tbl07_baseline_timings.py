"""Table 7: average waiting / execution / response times (baseline).

Paper's claims: Max has large admission waiting times (memory is its
bottleneck) but one-pass execution times; MinMax waits ~0 but executes
longer (sub-maximum allocations mean temp I/O); MinMax's total
response time is nevertheless far below Max's, which is why it misses
fewer deadlines.  Proportional's execution times exceed MinMax's.
"""

from repro.experiments.figures import table_07_baseline_timings


def test_tbl07_baseline_timings(benchmark, settings, once):
    table, raw = once(benchmark, table_07_baseline_timings, settings)
    print("\n" + table)

    heaviest = {policy: points[-1][1] for policy, points in raw.items()}

    # Max waits for memory; MinMax essentially does not.
    assert heaviest["max"].avg_waiting > 5 * max(0.2, heaviest["minmax"].avg_waiting)
    # MinMax trades that waiting for longer executions.
    assert heaviest["minmax"].avg_execution > heaviest["max"].avg_execution
    # Proportional's divided allocations execute slower than MinMax's.
    assert (
        heaviest["proportional"].avg_execution
        >= 0.95 * heaviest["minmax"].avg_execution
    )
    # And the whole point: Max's response is no better than MinMax's.
    assert heaviest["max"].avg_response > 0.8 * heaviest["minmax"].avg_response
