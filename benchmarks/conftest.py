"""Shared configuration for the reproduction benchmarks.

Every benchmark reproduces one table or figure from the paper's
Section 5, prints the regenerated series (for EXPERIMENTS.md), and
asserts the *qualitative* relations the paper reports -- rankings and
crossovers, not absolute numbers.

Scale/duration can be overridden through environment variables:

* ``REPRO_BENCH_SCALE``    (default 0.1 -- the paper's own small-scale
  configuration, Section 5.7)
* ``REPRO_BENCH_DURATION`` (default 1800 simulated seconds per point)
* ``REPRO_BENCH_SEED``     (default 7)

Simulation runs are memoised across benchmarks within one pytest
session, so figures sharing a sweep (3, 4, 5, 7, Table 7) pay for it
once.
"""

import os

import pytest

from repro.experiments.runner import ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.1")),
        duration=float(os.environ.get("REPRO_BENCH_DURATION", "1800")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "7")),
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run a figure function exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
