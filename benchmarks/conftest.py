"""Shared configuration for the reproduction benchmarks.

Every benchmark reproduces one table or figure from the paper's
Section 5, prints the regenerated series (for EXPERIMENTS.md), and
asserts the *qualitative* relations the paper reports -- rankings and
crossovers, not absolute numbers.

Execution goes through the experiment engine
(:mod:`repro.experiments.runner`): grid points fan out across worker
processes and land in a persistent on-disk result cache, so a warm
re-run of ``pytest benchmarks/`` replays cached results in seconds.

Scale/duration can be overridden through environment variables:

* ``REPRO_BENCH_SCALE``    (default 0.1 -- the paper's own small-scale
  configuration, Section 5.7)
* ``REPRO_BENCH_DURATION`` (default 1800 simulated seconds per point)
* ``REPRO_BENCH_SEED``     (default 7)

Engine knobs:

* ``REPRO_BENCH_JOBS``     worker processes for the simulation grids
  (default: ``REPRO_JOBS`` if set, else all cores; ``1`` forces serial)
* ``REPRO_BENCH_CACHE``    ``0``/``off`` disables the persistent cache,
  ``1``/``on`` forces it on at the default location, and any other
  value relocates it to that path; default: on, at ``REPRO_CACHE_DIR``
  or ``.repro_cache/``

Simulation runs are additionally memoised in-process, so figures
sharing a sweep (3, 4, 5, 7, Table 7) pay for it once per session even
with the persistent cache disabled.
"""

import os

import pytest

from repro.experiments import runner
from repro.experiments.runner import ExperimentSettings

_FALSEY = {"0", "false", "no", "off"}
_TRUTHY = {"1", "true", "yes", "on"}


@pytest.fixture(scope="session", autouse=True)
def engine():
    """Point the experiment engine at the benchmark env knobs."""
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    cache = os.environ.get("REPRO_BENCH_CACHE", "")
    cache_enabled = None
    cache_dir = None
    if cache.lower() in _FALSEY:
        cache_enabled = False
    elif cache.lower() in _TRUTHY:
        cache_enabled = True
    elif cache:
        cache_dir = cache
    runner.configure(
        jobs=int(jobs) if jobs else None,
        cache_dir=cache_dir,
        cache_enabled=cache_enabled,
    )
    return runner


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.1")),
        duration=float(os.environ.get("REPRO_BENCH_DURATION", "1800")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "7")),
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run a figure function exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
