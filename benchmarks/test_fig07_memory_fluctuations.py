"""Figure 7: average memory-allocation changes per query (baseline).

Paper's claims: Proportional generates by far the most fluctuations
(every arrival/departure re-divides memory among all queries); MinMax
and PMM expose queries to moderate fluctuation (min -> max as the
deadline nears); Max only ever suspends/resumes, the fewest changes.
"""

from repro.experiments.figures import figure_07_memory_fluctuations


def test_fig07_memory_fluctuations(benchmark, settings, once):
    figure = once(benchmark, figure_07_memory_fluctuations, settings)
    print("\n" + figure.render())

    heavy_rate = figure.series["max"][-1][0]
    proportional = figure.value("proportional", heavy_rate)
    minmax = figure.value("minmax", heavy_rate)
    max_policy = figure.value("max", heavy_rate)

    # Proportional fluctuates the most -- by a wide margin.
    assert proportional > 2 * minmax
    assert proportional > 2 * figure.value("pmm", heavy_rate)
    # Max exposes queries to the fewest allocation changes.
    assert max_policy <= minmax + 0.5
