"""Figure 11: MinMax-N miss ratio vs N at lambda = 0.07 (6 disks).

Paper's claims: the curve over N is concave-up with an interior
optimum (MinMax-10 in the paper's configuration): small N behaves like
Max (queues for admission), huge N behaves like unbounded MinMax
(thrashes), and the sweet spot lies in between.  PMM's miss ratio
lands near that optimum without knowing it in advance.
"""

from repro.experiments.figures import figure_11_minmax_n_sweep


def test_fig11_minmax_n_sweep(benchmark, settings, once):
    figure = once(benchmark, figure_11_minmax_n_sweep, settings)
    print("\n" + figure.render())

    points = figure.series["minmax-n"]
    values = {int(n): miss for n, miss in points}
    ns = sorted(values)
    best_n = min(values, key=values.get)
    best = values[best_n]
    smallest, largest = ns[0], ns[-1]

    # Interior (or at least non-extreme-small) optimum: the best N
    # improves on the most restrictive choice, and extreme liberality
    # does not beat it.
    assert best <= values[smallest]
    assert best <= values[largest] + 0.01
    # The restrictive end pays a real penalty.
    assert values[smallest] >= best
    # PMM lands within a few points of the best static choice
    # (the paper reports within ~2%; we allow noise at small scale).
    pmm = figure.series["pmm"][0][1]
    assert pmm <= best + 0.12
