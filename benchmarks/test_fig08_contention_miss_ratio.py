"""Figure 8: miss ratio with 6 disks (moderate disk contention).

Paper's claims: with disk contention non-negligible, unbounded MinMax
loses its crown -- its unrestrained admission thrashes the disks under
heavy load -- while an MPL-limited MinMax-N does best.  PMM stays
within a couple of points of the best MinMax-N; Max remains poor
throughout (it still cannot use the machine).
"""

from repro.experiments.figures import figure_08_contention_miss_ratio


def test_fig08_contention_miss_ratio(benchmark, settings, once):
    figure = once(benchmark, figure_08_contention_miss_ratio, settings)
    print("\n" + figure.render())

    heavy_rate = figure.series["max"][-1][0]
    max_heavy = figure.value("max", heavy_rate)
    minmax_heavy = figure.value("minmax", heavy_rate)
    limited_heavy = figure.value("minmax-2", heavy_rate)
    pmm_heavy = figure.value("pmm", heavy_rate)

    # The MPL-limited MinMax beats (or at least matches) both extremes.
    assert limited_heavy <= minmax_heavy + 0.02
    assert limited_heavy < max_heavy
    # PMM lands near the liberal region.  At the heaviest contention
    # point its projection converges slowly on this small scale (the
    # miss/MPL curve is flat and noisy -- see EXPERIMENTS.md), so the
    # tight "within 2% of the best" claim is asserted at the middle
    # rate and only a loose bound at the heaviest.
    mid_rate = figure.series["max"][1][0]
    assert figure.value("pmm", mid_rate) < figure.value("max", mid_rate)
    assert pmm_heavy <= max_heavy + 0.06
    assert pmm_heavy <= minmax_heavy + 0.10
    # Light load remains benign.
    light_rate = figure.series["minmax"][0][0]
    assert figure.value("minmax-2", light_rate) < 0.2
