"""Figure 18: PMM's per-class miss ratios (the Medium-class bias).

Paper's claims: while PMM's drift toward Max mode minimises the
*system* miss ratio at high Small rates, it severely limits the MPL
available to the large Medium queries, so a disproportionally large
fraction of Medium queries miss -- the bias that motivates the
fairness extension the paper leaves as future work.
"""

from repro.experiments.figures import figure_18_multiclass_perclass


def test_fig18_multiclass_perclass(benchmark, settings, once):
    figure = once(benchmark, figure_18_multiclass_perclass, settings)
    print("\n" + figure.render())

    high_rate = figure.series["Medium"][-1][0]
    medium_heavy = figure.value("Medium", high_rate)
    small_heavy = figure.value("Small", high_rate)

    # The bias: the Medium class misses far more than the Small class
    # when Small queries dominate the workload.
    assert medium_heavy > small_heavy
    assert medium_heavy > 1.5 * max(small_heavy, 0.02)
    # The bias grows with the Small arrival rate.
    medium_series = [value for _x, value in figure.series["Medium"]]
    assert medium_series[-1] >= medium_series[0]
