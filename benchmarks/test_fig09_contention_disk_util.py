"""Figure 9: disk utilisation with 6 disks (moderate contention).

Paper's claims: unbounded MinMax pushes the (now scarcer) disks to
high utilisation under heavy load -- the thrashing signal -- while
Max's stays low and flat.
"""

from repro.experiments.figures import figure_09_contention_disk_util


def test_fig09_contention_disk_util(benchmark, settings, once):
    figure = once(benchmark, figure_09_contention_disk_util, settings)
    print("\n" + figure.render())

    heavy_rate = figure.series["max"][-1][0]
    # MinMax loads the disks far more than Max.
    assert figure.value("minmax", heavy_rate) > 1.5 * figure.value("max", heavy_rate)
    # And clearly more than in a comfortable regime.
    assert figure.value("minmax", heavy_rate) > 0.45
    # Max stays fairly flat across the sweep.
    max_series = [value for _x, value in figure.series["max"]]
    assert max_series[-1] - max_series[0] < 0.15
