"""Section 5.7: scalability of the results.

Paper's claims: scaling relation and memory sizes up by a factor
(with arrival rates scaled down to hold utilisation level) preserves
the qualitative algorithm behaviour; the authors validated this with
a 10x-smaller replica of their experiments.  Here we double the scale
and check the policy ranking is preserved.
"""

from repro.experiments.figures import section_57_scalability


def test_sec57_scalability(benchmark, settings, once):
    results = once(benchmark, section_57_scalability, settings)
    print("\nSection 5.7: miss ratios at two scales")
    for scale_name, by_policy in results.items():
        print(f"  {scale_name:7s}:", {p: round(m, 3) for p, m in by_policy.items()})

    base = results["base"]
    scaled = results["scaled"]

    def ranking(entries):
        return sorted(entries, key=entries.get)

    # The winner is preserved across scales (the full ranking can be
    # noise-sensitive when two policies nearly tie).
    assert ranking(base)[0] == ranking(scaled)[0] or (
        abs(base[ranking(base)[0]] - base[ranking(scaled)[0]]) < 0.05
    )
    # Max does not become the best policy at either scale under this
    # memory-bound load.
    assert ranking(base)[0] != "max"
