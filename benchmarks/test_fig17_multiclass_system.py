"""Figure 17: system miss ratio for the two-class workload (12 disks).

Paper's claims: PMM adapts to the *average* workload characteristics,
so with few Small queries it behaves like MinMax (good for the
memory-bound Medium class), and as the Small arrival rate grows the
Small class dominates PMM's statistics and sways it toward Max --
which minimises the *system* miss ratio at high Small rates.
"""

from repro.experiments.figures import figure_17_multiclass_system


def test_fig17_multiclass_system(benchmark, settings, once):
    figure = once(benchmark, figure_17_multiclass_system, settings)
    print("\n" + figure.render())

    low_rate = figure.series["pmm"][0][0]
    high_rate = figure.series["pmm"][-1][0]

    # PMM stays close to the better static policy at both extremes.
    best_low = min(figure.value("max", low_rate), figure.value("minmax", low_rate))
    best_high = min(figure.value("max", high_rate), figure.value("minmax", high_rate))
    assert figure.value("pmm", low_rate) <= best_low + 0.08
    assert figure.value("pmm", high_rate) <= best_high + 0.08
    # Everything is a valid ratio and the sweep actually stresses the
    # system somewhere.
    for name, points in figure.series.items():
        for _x, value in points:
            assert 0.0 <= value <= 1.0
